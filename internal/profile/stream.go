package profile

import (
	"fmt"
	"time"

	"ovlp/internal/calib"
	"ovlp/internal/overlap"
	"ovlp/internal/trace"
)

// This file is the streaming half of the replay: RankReplay runs the
// reconstruction + bounds state machine of replay.go one trace record
// at a time, so live consumers (internal/timeres via a trace.Sink) can
// compute per-transfer overlap bounds while the run is still going,
// and the offline path (replayRank) reuses the identical machine —
// one arithmetic, two drivers, no post-hoc re-parse.

// Case is the monitor's transfer-observation taxonomy, exported so
// deferred-bounds consumers can reason about sample provenance.
type Case int

const (
	// CaseSameCall: begin and end fell inside one library call — no
	// overlap is possible and none is uncertain.
	CaseSameCall Case = iota
	// CaseBothStamps: both endpoints observed, at least one call
	// boundary between them; bounds come from the cumulative user/lib
	// clock deltas.
	CaseBothStamps
	// CaseSingleStamp: only the completion was visible to this rank.
	CaseSingleStamp
	// CaseTruncated: still open when the stream ended; downgraded to
	// single-stamp bounds.
	CaseTruncated
	// CaseExact: a hardware-stamped physical interval, bounded by the
	// retained user-interval window.
	CaseExact
)

func (c Case) String() string {
	switch c {
	case CaseSameCall:
		return "same-call"
	case CaseBothStamps:
		return "both-stamps"
	case CaseSingleStamp:
		return "single-stamp"
	case CaseTruncated:
		return "truncated"
	case CaseExact:
		return "exact"
	}
	return "invalid"
}

// XferSample is one replayed transfer carrying the raw measures the
// bounds arithmetic needs, with the calibration-table lookup deferred
// to Bounds. The deferral matters for streaming: a live sink attaches
// before the run calibrates, so samples are collected table-free and
// priced once the table exists.
type XferSample struct {
	ID     uint64
	Size   int64
	Region int32
	Op     string
	Case   Case
	// Epoch is the recovery epoch the sample is charged to: the epoch
	// in force when its completion (or truncation) was observed. Zero
	// for failure-free runs.
	Epoch int
	// Cut marks a CaseTruncated sample closed by an epoch cut (it was
	// in flight when a failure was agreed) rather than by stream end.
	Cut bool
	// BeginAt/At are the observation window endpoints on the shared
	// virtual timeline: initiation (zero when unseen) and completion
	// stamp. For CaseExact, At is the physical end of the wire
	// interval; for CaseTruncated it is the stream's end stamp.
	BeginAt time.Duration
	At      time.Duration
	// Computation/Noncomputation are the user/lib cumulative-clock
	// deltas over the window (CaseBothStamps only).
	Computation    time.Duration
	Noncomputation time.Duration
	// Known/Unknown/Data are the exact-case measures: overlap proven
	// by retained user intervals, the unknowable prefix predating the
	// window horizon, and the physical interval length.
	Known, Unknown, Data time.Duration
}

// Bounds prices the sample against a calibration table and returns
// the estimated transfer time with the min/max overlap bounds —
// exactly the arithmetic of overlap/process.go per case. The table is
// only consulted for estimated (non-exact) cases; CaseExact works
// with a nil table.
func (x *XferSample) Bounds(table *calib.Table) (xt, minOv, maxOv time.Duration) {
	if x.Case == CaseExact {
		xt = x.Data
		minOv = x.Known
		maxOv = x.Known + x.Unknown
		if maxOv > xt {
			maxOv = xt
		}
		if minOv > maxOv {
			minOv = maxOv
		}
		return xt, minOv, maxOv
	}
	xt = table.XferTime(int(x.Size))
	switch x.Case {
	case CaseSameCall:
		return xt, 0, 0
	case CaseSingleStamp, CaseTruncated:
		return xt, 0, xt
	}
	// CaseBothStamps.
	maxOv = xt
	if x.Computation < xt {
		maxOv = x.Computation
	}
	minOv = xt - x.Noncomputation
	if minOv < 0 {
		minOv = 0
	}
	if minOv > maxOv {
		minOv = maxOv
	}
	return xt, minOv, maxOv
}

// RankReplay reconstructs one rank's monitor event stream record by
// record and replays the bounds state machine, emitting an XferSample
// per completed transfer. Feed records in the host track's emission
// order; call Finish exactly once when the stream ends.
type RankReplay struct {
	emit   func(XferSample)
	window int

	// Reconstruction state (the pending/flush discipline of
	// replay.go's reconstruct): overlap instants are held until the
	// call span that contained them is emitted at call exit, so
	// instants stamped before the call began replay as user-code
	// events.
	pending  []rkEvent
	parks    []parkSpan
	labels   map[uint64]string
	done     time.Duration
	protocol string
	events   int

	// Replay state, mirroring overlap.procState.
	lastStamp time.Duration
	inLib     bool
	callSeq   uint64
	curRegion int32
	curOp     string
	epoch     int
	lastExit  time.Duration
	userIvals []struct{ start, end time.Duration }
	horizon   time.Duration
	cumUser   time.Duration
	cumLib    time.Duration
	open      map[uint64]openX

	finished bool
	err      error
}

// NewRankReplay creates a streaming replay. window is the
// user-interval retention for hardware-stamped bounds (0 selects
// overlap.DefaultUserIntervalWindow); emit receives each completed
// transfer and must not be nil.
func NewRankReplay(window int, emit func(XferSample)) *RankReplay {
	if window <= 0 {
		window = overlap.DefaultUserIntervalWindow
	}
	return &RankReplay{
		emit:   emit,
		window: window,
		open:   make(map[uint64]openX),
	}
}

// Err returns the first replay error; once set, further Feed calls
// are ignored.
func (r *RankReplay) Err() error { return r.err }

// Events returns how many monitor events have been replayed — the
// emptiness test offline analysis keys its table requirement on.
func (r *RankReplay) Events() int { return r.events }

// Done returns the largest record end stamp seen so far.
func (r *RankReplay) Done() time.Duration { return r.done }

// Protocol returns the library protocol from the attach instant (""
// when none was seen).
func (r *RankReplay) Protocol() string { return r.protocol }

// Labels returns the collective-schedule ownership labels keyed by
// transfer id (nil when none).
func (r *RankReplay) Labels() map[uint64]string { return r.labels }

// ParkTime sums the rank's parked time inside [from, to].
func (r *RankReplay) ParkTime(from, to time.Duration) time.Duration {
	var total time.Duration
	for _, p := range r.parks {
		if p.end <= from {
			continue
		}
		if p.start >= to {
			break
		}
		lo, hi := p.start, p.end
		if from > lo {
			lo = from
		}
		if to < hi {
			hi = to
		}
		if hi > lo {
			total += hi - lo
		}
	}
	return total
}

// Feed consumes one host-track record.
func (r *RankReplay) Feed(rec trace.Rec) {
	if r.err != nil || r.finished {
		return
	}
	end := rec.End().Duration()
	if end > r.done {
		r.done = end
	}
	switch rec.Cat {
	case "mpi", "armci":
		if rec.Name == "attach" {
			if r.protocol == "" {
				r.protocol = rec.Args.Detail
			}
			return
		}
		// A call span record is emitted at call exit, after every
		// overlap instant that fired inside it; pending instants
		// stamped before the call began happened in user code.
		start := rec.Start.Duration()
		r.flush(start, false)
		r.applyChecked(&rkEvent{kind: overlap.KindCallEnter, at: start, op: rec.Name})
		r.flush(0, true)
		r.applyChecked(&rkEvent{kind: overlap.KindCallExit, at: end, op: rec.Name})
	case "overlap":
		ev := rkEvent{at: rec.Start.Duration(), id: rec.Args.ID, size: rec.Args.Size}
		switch rec.Name {
		case "xfer-begin":
			ev.kind = overlap.KindXferBegin
		case "xfer-end":
			ev.kind = overlap.KindXferEnd
		case "xfer-exact":
			ev.kind = overlap.KindXferExact
			ev.start, ev.end = rec.Start.Duration(), rec.End().Duration()
		case "region-push":
			ev.kind = overlap.KindRegionPush
			ev.region = int32(rec.Args.ID)
		case "region-pop":
			ev.kind = overlap.KindRegionPop
			ev.region = int32(rec.Args.ID)
		case "epoch-cut":
			ev.kind = overlap.KindEpochCut
		default:
			return
		}
		r.pending = append(r.pending, ev)
	case "kernel":
		if rec.Name == "park" && rec.Dur > 0 {
			r.parks = append(r.parks, parkSpan{start: rec.Start.Duration(), end: end})
		}
	case "coll":
		if rec.Name == "sched" && rec.Args.Detail != "" {
			if r.labels == nil {
				r.labels = make(map[uint64]string)
			}
			r.labels[rec.Args.ID] = rec.Args.Detail
		}
	}
}

// flush replays pending overlap instants: those stamped before upto
// (or all of them) in order, stopping at the first that belongs
// inside the current call. An exact span's coordinates are the
// transfer's physical interval, which can predate the call that
// detected it; it was logged inside that call, so it is never an
// outside event (and everything logged after it is inside too).
func (r *RankReplay) flush(upto time.Duration, all bool) {
	n := 0
	for i := range r.pending {
		ev := &r.pending[i]
		if !all && (ev.kind == overlap.KindXferExact || ev.at >= upto) {
			break
		}
		r.applyChecked(ev)
		n++
	}
	r.pending = r.pending[n:]
}

func (r *RankReplay) applyChecked(e *rkEvent) {
	if r.err != nil {
		return
	}
	r.events++
	if err := r.apply(e); err != nil {
		r.err = err
	}
}

func (r *RankReplay) apply(e *rkEvent) error {
	if e.kind == overlap.KindXferExact {
		// The event's stamps are the physical interval, not the
		// detection time the monitor's clock advanced on. Exact mode
		// never reads the cumulative clocks, so skip advancing them.
		r.applyExact(e)
		return nil
	}
	if err := r.advance(e.at); err != nil {
		return err
	}
	switch e.kind {
	case overlap.KindCallEnter:
		r.inLib = true
		r.callSeq++
		r.curOp = e.op
		r.recordUserInterval(r.lastExit, e.at)
	case overlap.KindCallExit:
		r.inLib = false
		r.lastExit = e.at
	case overlap.KindRegionPush, overlap.KindRegionPop:
		r.curRegion = e.region
	case overlap.KindXferBegin:
		r.open[e.id] = openX{
			size:           e.size,
			cumUserAtBegin: r.cumUser,
			cumLibAtBegin:  r.cumLib,
			callSeq:        r.callSeq,
			region:         r.curRegion,
			op:             r.curOp,
			beginAt:        e.at,
		}
	case overlap.KindXferEnd:
		r.completeXfer(e)
	case overlap.KindEpochCut:
		r.cutEpoch(e.at)
	}
	return nil
}

// cutEpoch mirrors overlap.procState.cut: transfers still open are
// resolved as truncated inside the closing epoch (their completion
// belongs to the failed epoch and will never arrive), and subsequent
// samples are charged to the next epoch.
func (r *RankReplay) cutEpoch(at time.Duration) {
	for _, id := range sortedIDs(r.open) {
		rec := r.open[id]
		r.emit(XferSample{ID: id, Size: rec.size, Region: rec.region, Op: rec.op,
			Case: CaseTruncated, Cut: true, Epoch: r.epoch, BeginAt: rec.beginAt, At: at})
		delete(r.open, id)
	}
	r.epoch++
}

// sortedIDs returns the open-transfer ids ascending, for deterministic
// map iteration.
func sortedIDs(open map[uint64]openX) []uint64 {
	ids := make([]uint64, 0, len(open))
	for id := range open {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j-1] > ids[j]; j-- {
			ids[j-1], ids[j] = ids[j], ids[j-1]
		}
	}
	return ids
}

func (r *RankReplay) advance(stamp time.Duration) error {
	span := stamp - r.lastStamp
	if span < 0 {
		return fmt.Errorf("non-monotonic reconstructed stamps (%v after %v)", stamp, r.lastStamp)
	}
	if r.inLib {
		r.cumLib += span
	} else {
		r.cumUser += span
	}
	r.lastStamp = stamp
	return nil
}

func (r *RankReplay) recordUserInterval(start, end time.Duration) {
	if end <= start {
		return
	}
	if len(r.userIvals) >= r.window {
		drop := len(r.userIvals) - r.window + 1
		r.horizon = r.userIvals[drop-1].end
		r.userIvals = append(r.userIvals[:0], r.userIvals[drop:]...)
	}
	r.userIvals = append(r.userIvals, struct{ start, end time.Duration }{start, end})
}

// completeXfer is overlap.procState.completeXfer, emitting the raw
// sample instead of priced bounds.
func (r *RankReplay) completeXfer(e *rkEvent) {
	rec, seen := r.open[e.id]
	if !seen {
		// Single-stamp: initiation was invisible to this rank.
		op := r.curOp
		if !r.inLib {
			op = "(outside)"
		}
		r.emit(XferSample{ID: e.id, Size: e.size, Region: r.curRegion, Op: op,
			Case: CaseSingleStamp, Epoch: r.epoch, At: e.at})
		return
	}
	delete(r.open, e.id)
	if rec.callSeq == r.callSeq && r.inLib {
		r.emit(XferSample{ID: e.id, Size: rec.size, Region: rec.region, Op: rec.op,
			Case: CaseSameCall, Epoch: r.epoch, BeginAt: rec.beginAt, At: e.at})
		return
	}
	r.emit(XferSample{ID: e.id, Size: rec.size, Region: rec.region, Op: rec.op,
		Case:        CaseBothStamps,
		Epoch:       r.epoch,
		BeginAt:     rec.beginAt,
		At:          e.at,
		Computation: r.cumUser - rec.cumUserAtBegin, Noncomputation: r.cumLib - rec.cumLibAtBegin})
}

// applyExact mirrors overlap.procState.applyExact: the only gap an
// exact transfer can carry is the unknowable prefix predating the
// retained user-interval window.
func (r *RankReplay) applyExact(e *rkEvent) {
	start, end := e.start, e.end
	known := time.Duration(0)
	for _, iv := range r.userIvals {
		lo, hi := start, end
		if iv.start > lo {
			lo = iv.start
		}
		if iv.end < hi {
			hi = iv.end
		}
		if hi > lo {
			known += hi - lo
		}
	}
	var unknown time.Duration
	if start < r.horizon {
		cut := end
		if r.horizon < cut {
			cut = r.horizon
		}
		unknown = cut - start
	}
	op := r.curOp
	if !r.inLib {
		op = "(outside)"
	}
	r.emit(XferSample{ID: e.id, Size: e.size, Region: r.curRegion, Op: op,
		Case: CaseExact, Epoch: r.epoch, BeginAt: start, At: end,
		Known: known, Unknown: unknown, Data: end - start})
}

// Finish flushes pending instants and resolves still-open transfers
// as the monitor does at Finalize: downgraded to single-stamp bounds,
// marked truncated. Safe to call once; further Feeds are ignored.
func (r *RankReplay) Finish() {
	if r.finished {
		return
	}
	r.flush(0, true)
	r.finished = true
	if r.err != nil {
		return
	}
	for _, id := range sortedIDs(r.open) {
		rec := r.open[id]
		r.emit(XferSample{ID: id, Size: rec.size, Region: rec.region, Op: rec.op,
			Case: CaseTruncated, Epoch: r.epoch, BeginAt: rec.beginAt, At: r.done})
		delete(r.open, id)
	}
}
