// Package progress is the pluggable engine that decides *who* advances
// pending nonblocking-collective schedules, and when. The three modes
// reproduce the progress strategies whose overlap consequences the
// framework characterizes:
//
//   - Manual: nobody progresses between library calls. Schedules
//     advance only when the application itself re-enters the library
//     (Test/Iprobe/Wait...), so a rank that computes without polling
//     starves its own collectives — the baseline the paper's
//     instrumentation exposes.
//   - Piggyback: every library call entry and exit also polls the
//     engine once, the "progress whenever MPI runs" strategy of
//     MPICH-style libraries. Frequent callers get good progress for
//     free; compute-bound phases still starve.
//   - Thread: a dedicated progress thread, modeled as an extra vtime
//     goroutine per rank that wakes every Quantum of virtual time and
//     polls, independent of what the application does. This is the
//     asynchronous-progress configuration; it recovers overlap at the
//     cost of the quantum's polling latency and its CPU share.
//
// The engine is transport-agnostic: the owning rank supplies a Poll
// hook (one progress sweep, reporting whether anything advanced) and a
// Wake hook (unblock the application if it is parked waiting on a
// completion). Determinism is preserved — the thread is driven purely
// by the virtual-time quantum timer, so a run's interleaving is a
// function of the configuration alone.
package progress

import (
	"fmt"
	"strings"
	"time"

	"ovlp/internal/vtime"
)

// Mode selects the progress strategy.
type Mode int

const (
	// Manual: progress happens only inside application library calls.
	Manual Mode = iota
	// Piggyback: additionally poll on every call entry and exit.
	Piggyback
	// Thread: a dedicated per-rank progress thread polls every
	// Quantum of virtual time.
	Thread
)

func (m Mode) String() string {
	switch m {
	case Manual:
		return "manual"
	case Piggyback:
		return "piggyback"
	case Thread:
		return "thread"
	}
	return "invalid"
}

// ParseMode parses a -progress flag value.
func ParseMode(s string) (Mode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "manual":
		return Manual, nil
	case "piggyback", "call":
		return Piggyback, nil
	case "thread", "async":
		return Thread, nil
	}
	return Manual, fmt.Errorf("progress: unknown mode %q (want manual, piggyback or thread)", s)
}

// DefaultQuantum is the progress thread's wake interval when the
// configuration leaves it zero: long enough that polling overhead is
// marginal, short enough to keep multi-round schedules moving through
// a typical compute phase.
const DefaultQuantum = 10 * time.Microsecond

// Config selects the strategy per run.
type Config struct {
	Mode Mode
	// Quantum is the progress thread's wake interval (Thread mode
	// only; 0 = DefaultQuantum).
	Quantum time.Duration
}

// Hooks connect the engine to the owning rank's transport.
type Hooks struct {
	// Poll performs one progress sweep driven by proc (the progress
	// thread's vtime goroutine) and reports whether anything advanced.
	Poll func(p *vtime.Proc) bool
	// Wake unblocks the application thread if it is parked waiting on
	// a completion the sweep may have delivered.
	Wake func()
}

// Engine drives pending schedules for one rank.
type Engine struct {
	cfg  Config
	h    Hooks
	sim  *vtime.Sim
	proc *vtime.Proc // progress thread (Thread mode only)
	work int         // outstanding nonblocking operations
	stop bool
}

// New builds an engine; call Start once the owning rank is running.
func New(sim *vtime.Sim, cfg Config, h Hooks) *Engine {
	if cfg.Quantum <= 0 {
		cfg.Quantum = DefaultQuantum
	}
	return &Engine{cfg: cfg, h: h, sim: sim}
}

// Mode reports the configured strategy.
func (e *Engine) Mode() Mode { return e.cfg.Mode }

// PollOnCall reports whether library call boundaries should poll
// (Piggyback mode).
func (e *Engine) PollOnCall() bool { return e.cfg.Mode == Piggyback }

// Start spawns the progress thread if the mode calls for one. Must run
// from simulation context (the owning rank's goroutine).
func (e *Engine) Start(name string) {
	if e.cfg.Mode != Thread {
		return
	}
	e.proc = e.sim.Spawn(name, e.run)
}

// run is the progress thread: park while idle, and while work is
// pending poll once per quantum of virtual time. The quantum timer
// uses a cancellable event so an early wake (new work arriving) does
// not leave a stale timer extending the simulation.
func (e *Engine) run(p *vtime.Proc) {
	for {
		if e.stop {
			return
		}
		if e.work == 0 {
			p.Park("progress.idle")
			continue
		}
		if e.h.Poll(p) {
			e.h.Wake()
		}
		if e.stop {
			return
		}
		cancel := e.sim.AfterCancel(e.cfg.Quantum, p.Unpark)
		p.Park("progress.quantum")
		cancel()
	}
}

// OpStarted tells the engine a nonblocking operation is pending; in
// Thread mode this wakes the thread out of its idle park.
func (e *Engine) OpStarted() {
	e.work++
	if e.proc != nil {
		e.proc.Unpark()
	}
}

// OpDone retires one pending operation.
func (e *Engine) OpDone() {
	if e.work > 0 {
		e.work--
	}
}

// Stop shuts the progress thread down so the simulation can drain; the
// owning rank calls it from finalization, after all pending operations
// have completed. Idempotent.
func (e *Engine) Stop() {
	if e.stop {
		return
	}
	e.stop = true
	if e.proc != nil {
		e.proc.Unpark()
	}
}
