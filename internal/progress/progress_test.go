package progress

import (
	"testing"
	"time"

	"ovlp/internal/vtime"
)

func TestParseMode(t *testing.T) {
	for _, m := range []Mode{Manual, Piggyback, Thread} {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseMode("psychic"); err == nil {
		t.Error("ParseMode accepted garbage")
	}
	if got, err := ParseMode("async"); err != nil || got != Thread {
		t.Errorf("ParseMode(async) = %v, %v", got, err)
	}
}

// TestThreadQuantum runs a thread-mode engine in a bare simulation and
// checks that polls land once per quantum while work is pending, and
// that Stop lets the simulation drain.
func TestThreadQuantum(t *testing.T) {
	sim := vtime.NewSim()
	var polls []vtime.Time
	var eng *Engine
	sim.Spawn("app", func(p *vtime.Proc) {
		eng = New(sim, Config{Mode: Thread, Quantum: 5 * time.Microsecond}, Hooks{
			Poll: func(tp *vtime.Proc) bool {
				polls = append(polls, sim.Now())
				return false
			},
			Wake: func() {},
		})
		eng.Start("app.progress")
		eng.OpStarted()
		p.Compute(22 * time.Microsecond)
		eng.OpDone()
		eng.Stop()
	})
	if _, err := sim.RunE(); err != nil {
		t.Fatalf("RunE: %v", err)
	}
	// Polls at t=0 (OpStarted wake) then every 5us during the 22us
	// compute. An Unpark permit pending when the thread reaches its
	// quantum park can duplicate a poll at the same instant; what
	// matters is that distinct poll times are quantum-spaced.
	var uniq []vtime.Time
	for _, ts := range polls {
		if len(uniq) == 0 || ts != uniq[len(uniq)-1] {
			uniq = append(uniq, ts)
		}
	}
	if len(uniq) < 4 {
		t.Fatalf("only %d distinct polls during compute: %v", len(uniq), polls)
	}
	for i := 1; i < len(uniq); i++ {
		if d := time.Duration(uniq[i] - uniq[i-1]); d != 5*time.Microsecond {
			t.Errorf("poll gap %d = %v, want 5us", i, d)
		}
	}
}

// TestManualNeverSpawns checks the cheap modes spawn no thread and
// report their call-boundary behaviour.
func TestManualNeverSpawns(t *testing.T) {
	sim := vtime.NewSim()
	sim.Spawn("app", func(p *vtime.Proc) {
		e := New(sim, Config{}, Hooks{Poll: func(*vtime.Proc) bool { return false }, Wake: func() {}})
		e.Start("nope")
		e.OpStarted()
		e.OpDone()
		e.Stop()
		if e.PollOnCall() {
			t.Error("manual mode polls on call")
		}
		pb := New(sim, Config{Mode: Piggyback}, Hooks{})
		if !pb.PollOnCall() {
			t.Error("piggyback mode does not poll on call")
		}
	})
	if _, err := sim.RunE(); err != nil {
		t.Fatalf("RunE: %v", err)
	}
}
