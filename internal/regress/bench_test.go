package regress

import "testing"

// The go test -bench wrappers expose the gate's suites through the
// standard benchmark machinery, reporting the virtual-time measures as
// custom metrics (wall clock of a simulated run is meaningless; the
// virtual quantities are the ones the gate protects):
//
//	go test -bench 'Suite' -benchtime 1x ./internal/regress
func benchSuite(b *testing.B, run func() *Baseline) {
	for i := 0; i < b.N; i++ {
		base := run()
		for _, e := range base.Entries {
			b.ReportMetric(float64(e.WallNS), e.Name+":wall-ns")
			b.ReportMetric(float64(e.CritPathNS), e.Name+":crit-ns")
			b.ReportMetric(e.MinOverlapPct, e.Name+":min-ovl-%")
			b.ReportMetric(e.MaxOverlapPct, e.Name+":max-ovl-%")
		}
	}
}

func BenchmarkOverlapSuite(b *testing.B) { benchSuite(b, RunOverlapSuite) }
func BenchmarkNASSuite(b *testing.B)     { benchSuite(b, RunNASSuite) }
func BenchmarkCollSuite(b *testing.B)    { benchSuite(b, RunCollSuite) }
