// Package regress is the benchmark-regression harness: it measures a
// fixed suite of deterministic workloads (wall time, overlap bounds,
// critical-path length, transfer count), saves them as schema-versioned
// JSON baselines, and compares a fresh measurement against a committed
// baseline.
//
// Because every workload runs on the virtual-time simulator, a
// measurement is a pure function of the code: re-running an unchanged
// tree reproduces the baseline byte for byte, and any drift — not just
// slowdowns — means the model changed and the baseline needs a
// deliberate refresh. Compare therefore flags deviation in either
// direction beyond the tolerance; cmd/benchgate turns its findings
// into a non-zero exit for CI.
package regress

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
)

// Schema versions the baseline file layout. Bump it when Entry gains,
// loses or reinterprets a field; Compare refuses mismatched schemas.
const Schema = 1

// Entry is one workload's measurement.
type Entry struct {
	Name string `json:"name"`
	// WallNS is the run's virtual wall time in nanoseconds.
	WallNS int64 `json:"wall_ns"`
	// MinOverlapPct and MaxOverlapPct are the cross-rank overlap
	// bounds as percentages of data transfer time.
	MinOverlapPct float64 `json:"min_overlap_pct"`
	MaxOverlapPct float64 `json:"max_overlap_pct"`
	// CritPathNS is the profiler's critical-path length in
	// nanoseconds (equal to WallNS when the path tiles the run; kept
	// separately so path-extraction regressions are visible).
	CritPathNS int64 `json:"critical_path_ns"`
	// Transfers counts the suite's data transfers — exact, so any
	// change fails the gate regardless of tolerance.
	Transfers int `json:"transfers"`
}

// Baseline is one suite's measurements.
type Baseline struct {
	Schema  int     `json:"schema"`
	Suite   string  `json:"suite"`
	Entries []Entry `json:"entries"`
}

// EncodeJSON writes the baseline as indented JSON. Field order is
// declaration order and the workloads are deterministic, so the same
// tree always produces the same bytes.
func (b *Baseline) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// DecodeJSON reads a baseline written by EncodeJSON.
func DecodeJSON(r io.Reader) (*Baseline, error) {
	var b Baseline
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("regress: decoding baseline: %w", err)
	}
	return &b, nil
}

// Save writes the baseline to the named file.
func (b *Baseline) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := b.EncodeJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a baseline file written by Save.
func Load(path string) (*Baseline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeJSON(f)
}

// Compare checks a fresh measurement against a baseline and returns
// one human-readable finding per violation (empty = gate passes).
// Durations fail beyond tolPct percent relative deviation, overlap
// percentages beyond tolPct percentage points absolute, and transfer
// counts on any change.
func Compare(got, want *Baseline, tolPct float64) []string {
	var bad []string
	fail := func(format string, args ...any) {
		bad = append(bad, fmt.Sprintf(format, args...))
	}
	if got.Schema != want.Schema {
		fail("schema %d measured vs %d baseline: regenerate the baseline", got.Schema, want.Schema)
		return bad
	}
	if got.Suite != want.Suite {
		fail("suite %q measured vs %q baseline", got.Suite, want.Suite)
		return bad
	}
	byName := make(map[string]Entry, len(got.Entries))
	for _, e := range got.Entries {
		byName[e.Name] = e
	}
	for _, w := range want.Entries {
		g, ok := byName[w.Name]
		if !ok {
			fail("%s: missing from measurement", w.Name)
			continue
		}
		delete(byName, w.Name)
		if d := relPct(g.WallNS, w.WallNS); math.Abs(d) > tolPct {
			fail("%s: wall time %+.2f%% (%d ns -> %d ns), tolerance %g%%",
				w.Name, d, w.WallNS, g.WallNS, tolPct)
		}
		if d := relPct(g.CritPathNS, w.CritPathNS); math.Abs(d) > tolPct {
			fail("%s: critical path %+.2f%% (%d ns -> %d ns), tolerance %g%%",
				w.Name, d, w.CritPathNS, g.CritPathNS, tolPct)
		}
		if d := g.MinOverlapPct - w.MinOverlapPct; math.Abs(d) > tolPct {
			fail("%s: min overlap %+.2fpp (%.2f%% -> %.2f%%), tolerance %gpp",
				w.Name, d, w.MinOverlapPct, g.MinOverlapPct, tolPct)
		}
		if d := g.MaxOverlapPct - w.MaxOverlapPct; math.Abs(d) > tolPct {
			fail("%s: max overlap %+.2fpp (%.2f%% -> %.2f%%), tolerance %gpp",
				w.Name, d, w.MaxOverlapPct, g.MaxOverlapPct, tolPct)
		}
		if g.Transfers != w.Transfers {
			fail("%s: transfers %d -> %d (exact in a deterministic run)",
				w.Name, w.Transfers, g.Transfers)
		}
	}
	for name := range byName {
		fail("%s: not in baseline: regenerate with -write", name)
	}
	return bad
}

// relPct is the relative deviation of got from want, in percent.
func relPct(got, want int64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return 100 * float64(got-want) / float64(want)
}
