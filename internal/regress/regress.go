// Package regress is the benchmark-regression harness: it measures a
// fixed suite of deterministic workloads (wall time, overlap bounds,
// critical-path length, transfer count), saves them as schema-versioned
// JSON baselines, and compares a fresh measurement against a committed
// baseline.
//
// Because every workload runs on the virtual-time simulator, a
// measurement is a pure function of the code: re-running an unchanged
// tree reproduces the baseline byte for byte, and any drift — not just
// slowdowns — means the model changed and the baseline needs a
// deliberate refresh. Compare therefore flags deviation in either
// direction beyond the tolerance; cmd/benchgate turns its findings
// into a non-zero exit for CI.
package regress

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// Schema versions the baseline file layout. Bump it when Entry gains,
// loses or reinterprets a field; Compare refuses mismatched schemas.
const Schema = 1

// Entry is one workload's measurement.
type Entry struct {
	Name string `json:"name"`
	// WallNS is the run's virtual wall time in nanoseconds.
	WallNS int64 `json:"wall_ns"`
	// MinOverlapPct and MaxOverlapPct are the cross-rank overlap
	// bounds as percentages of data transfer time.
	MinOverlapPct float64 `json:"min_overlap_pct"`
	MaxOverlapPct float64 `json:"max_overlap_pct"`
	// CritPathNS is the profiler's critical-path length in
	// nanoseconds (equal to WallNS when the path tiles the run; kept
	// separately so path-extraction regressions are visible).
	CritPathNS int64 `json:"critical_path_ns"`
	// Transfers counts the suite's data transfers — exact, so any
	// change fails the gate regardless of tolerance.
	Transfers int `json:"transfers"`
}

// Baseline is one suite's measurements.
type Baseline struct {
	Schema  int     `json:"schema"`
	Suite   string  `json:"suite"`
	Entries []Entry `json:"entries"`
}

// EncodeJSON writes the baseline as indented JSON. Field order is
// declaration order and the workloads are deterministic, so the same
// tree always produces the same bytes.
func (b *Baseline) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// DecodeJSON reads a baseline written by EncodeJSON.
func DecodeJSON(r io.Reader) (*Baseline, error) {
	var b Baseline
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("regress: decoding baseline: %w", err)
	}
	return &b, nil
}

// Save writes the baseline to the named file.
func (b *Baseline) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := b.EncodeJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a baseline file written by Save.
func Load(path string) (*Baseline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeJSON(f)
}

// Violation is one structured gate failure. Metric names the gate
// dimension that tripped (the baseline JSON field name, or "schema" /
// "suite" / "entries" for structural mismatches); Delta carries the
// measured deviation in the metric's own unit — percent for
// durations, percentage points for overlap bounds, a raw count for
// transfers. String renders the canonical machine-parseable line CI
// greps for, so scripts can key on suite/entry/metric without parsing
// the human sentence in Detail.
type Violation struct {
	Suite  string  `json:"suite"`
	Entry  string  `json:"entry,omitempty"`
	Metric string  `json:"metric"`
	Want   float64 `json:"want"`
	Got    float64 `json:"got"`
	Delta  float64 `json:"delta"`
	Tol    float64 `json:"tol"`
	Detail string  `json:"detail"`
}

func (v Violation) String() string {
	entry := v.Entry
	if entry == "" {
		entry = "-"
	}
	return fmt.Sprintf("gate suite=%s entry=%s metric=%s want=%g got=%g delta=%+.2f tol=%g: %s",
		v.Suite, entry, v.Metric, v.Want, v.Got, v.Delta, v.Tol, v.Detail)
}

// Compare checks a fresh measurement against a baseline and returns
// one structured Violation per failed check (empty = gate passes).
// Durations fail beyond tolPct percent relative deviation, overlap
// percentages beyond tolPct percentage points absolute, and transfer
// counts on any change.
func Compare(got, want *Baseline, tolPct float64) []Violation {
	var bad []Violation
	fail := func(entry, metric string, wantV, gotV, delta float64, format string, args ...any) {
		bad = append(bad, Violation{
			Suite: want.Suite, Entry: entry, Metric: metric,
			Want: wantV, Got: gotV, Delta: delta, Tol: tolPct,
			Detail: fmt.Sprintf(format, args...),
		})
	}
	if got.Schema != want.Schema {
		fail("", "schema", float64(want.Schema), float64(got.Schema), float64(got.Schema-want.Schema),
			"schema %d measured vs %d baseline: regenerate the baseline", got.Schema, want.Schema)
		return bad
	}
	if got.Suite != want.Suite {
		fail("", "suite", 0, 0, 0, "suite %q measured vs %q baseline", got.Suite, want.Suite)
		return bad
	}
	byName := make(map[string]Entry, len(got.Entries))
	for _, e := range got.Entries {
		byName[e.Name] = e
	}
	for _, w := range want.Entries {
		g, ok := byName[w.Name]
		if !ok {
			fail(w.Name, "entries", 1, 0, -1, "%s: missing from measurement", w.Name)
			continue
		}
		delete(byName, w.Name)
		if d := relPct(g.WallNS, w.WallNS); math.Abs(d) > tolPct {
			fail(w.Name, "wall_ns", float64(w.WallNS), float64(g.WallNS), d,
				"%s: wall time %+.2f%% (%d ns -> %d ns), tolerance %g%%",
				w.Name, d, w.WallNS, g.WallNS, tolPct)
		}
		if d := relPct(g.CritPathNS, w.CritPathNS); math.Abs(d) > tolPct {
			fail(w.Name, "critical_path_ns", float64(w.CritPathNS), float64(g.CritPathNS), d,
				"%s: critical path %+.2f%% (%d ns -> %d ns), tolerance %g%%",
				w.Name, d, w.CritPathNS, g.CritPathNS, tolPct)
		}
		if d := g.MinOverlapPct - w.MinOverlapPct; math.Abs(d) > tolPct {
			fail(w.Name, "min_overlap_pct", w.MinOverlapPct, g.MinOverlapPct, d,
				"%s: min overlap %+.2fpp (%.2f%% -> %.2f%%), tolerance %gpp",
				w.Name, d, w.MinOverlapPct, g.MinOverlapPct, tolPct)
		}
		if d := g.MaxOverlapPct - w.MaxOverlapPct; math.Abs(d) > tolPct {
			fail(w.Name, "max_overlap_pct", w.MaxOverlapPct, g.MaxOverlapPct, d,
				"%s: max overlap %+.2fpp (%.2f%% -> %.2f%%), tolerance %gpp",
				w.Name, d, w.MaxOverlapPct, g.MaxOverlapPct, tolPct)
		}
		if g.Transfers != w.Transfers {
			fail(w.Name, "transfers", float64(w.Transfers), float64(g.Transfers), float64(g.Transfers-w.Transfers),
				"%s: transfers %d -> %d (exact in a deterministic run)",
				w.Name, w.Transfers, g.Transfers)
		}
	}
	extra := make([]string, 0, len(byName))
	for name := range byName {
		extra = append(extra, name)
	}
	sort.Strings(extra)
	for _, name := range extra {
		fail(name, "entries", 0, 1, 1, "%s: not in baseline: regenerate with -write", name)
	}
	return bad
}

// relPct is the relative deviation of got from want, in percent.
func relPct(got, want int64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return 100 * float64(got-want) / float64(want)
}
