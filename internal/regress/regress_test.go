package regress

import (
	"bytes"
	"testing"
)

// TestBaselineByteStable is the gate's determinism criterion: running
// a suite twice yields byte-identical baseline files.
func TestBaselineByteStable(t *testing.T) {
	var runs [2][]byte
	for i := range runs {
		var b bytes.Buffer
		if err := RunOverlapSuite().EncodeJSON(&b); err != nil {
			t.Fatal(err)
		}
		runs[i] = b.Bytes()
	}
	if !bytes.Equal(runs[0], runs[1]) {
		t.Fatalf("suite re-run changed baseline bytes:\n%s\nvs\n%s", runs[0], runs[1])
	}
}

// TestSelfCompare: a measurement compared against itself passes at
// zero tolerance.
func TestSelfCompare(t *testing.T) {
	b := RunOverlapSuite()
	if bad := Compare(b, b, 0); len(bad) != 0 {
		t.Fatalf("self-comparison failed: %v", bad)
	}
}

// TestCompareFlagsRegressions checks each gate dimension trips.
func TestCompareFlagsRegressions(t *testing.T) {
	base := &Baseline{Schema: Schema, Suite: "t", Entries: []Entry{
		{Name: "w", WallNS: 1000, MinOverlapPct: 40, MaxOverlapPct: 80, CritPathNS: 1000, Transfers: 10},
	}}
	cases := []struct {
		name   string
		mutate func(*Entry)
	}{
		{"wall", func(e *Entry) { e.WallNS = 1100 }},
		{"crit", func(e *Entry) { e.CritPathNS = 900 }},
		{"min overlap", func(e *Entry) { e.MinOverlapPct = 34 }},
		{"max overlap", func(e *Entry) { e.MaxOverlapPct = 86 }},
		{"transfers", func(e *Entry) { e.Transfers = 11 }},
	}
	for _, c := range cases {
		got := &Baseline{Schema: Schema, Suite: "t", Entries: []Entry{base.Entries[0]}}
		c.mutate(&got.Entries[0])
		if bad := Compare(got, base, 5); len(bad) == 0 {
			t.Errorf("%s deviation not flagged", c.name)
		}
	}
	// Within tolerance passes.
	got := &Baseline{Schema: Schema, Suite: "t", Entries: []Entry{base.Entries[0]}}
	got.Entries[0].WallNS = 1030
	if bad := Compare(got, base, 5); len(bad) != 0 {
		t.Errorf("3%% deviation flagged at 5%% tolerance: %v", bad)
	}
}

// TestCompareStructure flags schema, missing and extra entries.
func TestCompareStructure(t *testing.T) {
	base := &Baseline{Schema: Schema, Suite: "t", Entries: []Entry{{Name: "a"}, {Name: "b"}}}
	if bad := Compare(&Baseline{Schema: Schema + 1, Suite: "t"}, base, 5); len(bad) == 0 {
		t.Error("schema mismatch not flagged")
	}
	got := &Baseline{Schema: Schema, Suite: "t", Entries: []Entry{{Name: "a"}, {Name: "c"}}}
	bad := Compare(got, base, 5)
	if len(bad) != 2 {
		t.Errorf("want missing-b and extra-c findings, got %v", bad)
	}
}

// TestJSONRoundTrip: encode/decode preserves the baseline.
func TestJSONRoundTrip(t *testing.T) {
	b := &Baseline{Schema: Schema, Suite: "overlap", Entries: []Entry{
		{Name: "x", WallNS: 123, MinOverlapPct: 1.5, MaxOverlapPct: 97.25, CritPathNS: 123, Transfers: 7},
	}}
	var buf bytes.Buffer
	if err := b.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if bad := Compare(got, b, 0); len(bad) != 0 {
		t.Fatalf("round trip changed the baseline: %v", bad)
	}
	if _, err := DecodeJSON(bytes.NewBufferString(`{"schema":1,"bogus":true}`)); err == nil {
		t.Error("unknown field accepted")
	}
}
