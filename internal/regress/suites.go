package regress

import (
	"fmt"
	"time"

	"ovlp/internal/cluster"
	"ovlp/internal/coll"
	"ovlp/internal/mpi"
	"ovlp/internal/nas"
	"ovlp/internal/overlap"
	"ovlp/internal/profile"
	"ovlp/internal/progress"
	"ovlp/internal/timeres"
	"ovlp/internal/trace"
)

// The suites pin the code paths the paper's evaluation exercises: the
// eager, pipelined-rendezvous and direct-read protocols on the
// two-process exchange (the microbenchmark shape of Figs. 3-9), and
// one real NAS kernel. Workload parameters are fixed forever — the
// baseline files encode their results, so changing a parameter is the
// same as deleting the baseline's history.

// Artifact is one workload's retained analysis output: the blame
// profile and windowed efficiency snapshot behind an Entry's numbers.
// Runners obtained through SuitesTraced keep one Artifact per entry,
// so cmd/benchgate -explain can hand a regression it just flagged to
// the diagnosis engine without re-measuring. TimeRes is nil when the
// stream could not be replayed (the profile alone still explains the
// blame split).
type Artifact struct {
	Entry   string
	Profile *profile.Profile
	TimeRes *timeres.Snapshot
}

// RunOverlapSuite measures the three protocol paths on the
// two-process exchange workload.
func RunOverlapSuite() *Baseline { b, _ := overlapSuite(nil); return b }

func overlapSuite(arts *[]Artifact) (*Baseline, []Artifact) {
	b := &Baseline{Schema: Schema, Suite: "overlap"}
	type cfg struct {
		name  string
		proto mpi.LongProtocol
		size  int
	}
	for _, c := range []cfg{
		{"eager-10KiB", mpi.PipelinedRDMA, 10 << 10},
		{"pipelined-1MiB", mpi.PipelinedRDMA, 1 << 20},
		{"direct-1MiB", mpi.DirectRDMARead, 1 << 20},
	} {
		b.Entries = append(b.Entries, measure(c.name, cluster.Config{
			Procs: 2,
			MPI: mpi.Config{
				Protocol:   c.proto,
				Instrument: &mpi.InstrumentConfig{},
			},
		}, exchangeBody(c.size, 50, 200*time.Microsecond), arts))
	}
	return b, deref(arts)
}

// RunNASSuite measures one real kernel: LU class S on four ranks,
// three iterations, under the direct-read library.
func RunNASSuite() *Baseline { b, _ := nasSuite(nil); return b }

func nasSuite(arts *[]Artifact) (*Baseline, []Artifact) {
	b := &Baseline{Schema: Schema, Suite: "nas"}
	b.Entries = append(b.Entries, measure("lu-S-p4", cluster.Config{
		Procs: 4,
		MPI: mpi.Config{
			Protocol:   mpi.DirectRDMARead,
			Instrument: &mpi.InstrumentConfig{},
		},
	}, func(r *mpi.Rank) {
		nas.Run(nas.LU, r, nas.Params{Class: nas.ClassS, MaxIters: 3})
	}, arts))
	return b, deref(arts)
}

// RunCollSuite measures the nonblocking-collective subsystem: a
// compute-overlapped ring and recursive-doubling Iallreduce on four
// ranks under each progress mode. The thread rows pin the subsystem's
// reason to exist — the overlap a progress thread recovers from
// unpolled schedules — so a regression there is a regression in the
// PR's headline result.
func RunCollSuite() *Baseline { b, _ := collSuite(nil); return b }

func collSuite(arts *[]Artifact) (*Baseline, []Artifact) {
	b := &Baseline{Schema: Schema, Suite: "coll"}
	for _, algo := range []coll.Algo{coll.Ring, coll.RecDouble} {
		for _, mode := range []progress.Mode{progress.Manual, progress.Piggyback, progress.Thread} {
			name := fmt.Sprintf("iallreduce-64KiB-%s-%s", algo, mode)
			b.Entries = append(b.Entries, measure(name, cluster.Config{
				Procs: 4,
				MPI: mpi.Config{
					CollAlgo:   algo,
					Progress:   progress.Config{Mode: mode},
					Instrument: &mpi.InstrumentConfig{},
				},
			}, iallreduceBody(64<<10, 30, 200*time.Microsecond), arts))
		}
	}
	return b, deref(arts)
}

func deref(arts *[]Artifact) []Artifact {
	if arts == nil {
		return nil
	}
	return *arts
}

// Suites maps the suite names cmd/benchgate accepts to their runners.
func Suites() map[string]func() *Baseline {
	return map[string]func() *Baseline{
		"overlap": RunOverlapSuite,
		"nas":     RunNASSuite,
		"coll":    RunCollSuite,
	}
}

// SuitesTraced maps suite names to runners that also retain each
// entry's analysis artifacts for post-hoc diagnosis. The measurement
// itself is identical to Suites — the capture is a pure observer.
func SuitesTraced() map[string]func() (*Baseline, []Artifact) {
	wrap := func(run func(*[]Artifact) (*Baseline, []Artifact)) func() (*Baseline, []Artifact) {
		return func() (*Baseline, []Artifact) {
			var arts []Artifact
			return run(&arts)
		}
	}
	return map[string]func() (*Baseline, []Artifact){
		"overlap": wrap(overlapSuite),
		"nas":     wrap(nasSuite),
		"coll":    wrap(collSuite),
	}
}

func iallreduceBody(size, reps int, compute time.Duration) func(r *mpi.Rank) {
	return func(r *mpi.Rank) {
		for i := 0; i < reps; i++ {
			r.PushRegion("allreduce")
			cr := r.Iallreduce(size)
			r.Compute(compute)
			r.WaitColl(cr)
			r.PopRegion()
		}
	}
}

func exchangeBody(size, reps int, compute time.Duration) func(r *mpi.Rank) {
	return func(r *mpi.Rank) {
		peer := 1 - r.ID()
		for i := 0; i < reps; i++ {
			r.PushRegion("exchange")
			var q *mpi.Request
			if r.ID() == 0 {
				q = r.Isend(peer, 0, size)
			} else {
				q = r.Irecv(peer, 0)
			}
			r.Compute(compute)
			r.Wait(q)
			r.PopRegion()
		}
	}
}

func measure(name string, cfg cluster.Config, body func(r *mpi.Rank), arts *[]Artifact) Entry {
	tr := trace.New(trace.Options{})
	cfg.Trace = tr
	res := cluster.Run(cfg, body)
	in := profile.FromTracer(tr, res.Calib, res.Reports)
	p, err := profile.Analyze(in)
	if err != nil {
		panic(fmt.Sprintf("regress: profiling %s: %v", name, err))
	}
	if arts != nil {
		a := Artifact{Entry: name, Profile: p}
		if snap, err := timeres.FromInput(in, timeres.Options{}); err == nil {
			a.TimeRes = snap
		}
		*arts = append(*arts, a)
	}
	var tot overlap.Measures
	for _, rep := range res.Reports {
		if rep != nil {
			tot.Add(rep.Total())
		}
	}
	return Entry{
		Name:          name,
		WallNS:        res.Duration.Nanoseconds(),
		MinOverlapPct: tot.MinPercent(),
		MaxOverlapPct: tot.MaxPercent(),
		CritPathNS:    p.Critical.Length.Nanoseconds(),
		Transfers:     tot.Count,
	}
}
