package report_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ovlp/internal/cluster"
	"ovlp/internal/mpi"
	"ovlp/internal/overlap"
	"ovlp/internal/report"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestTimelineGolden locks the ASCII timeline renderer's output on a
// fixed-seed run of the ring scenario (the cmd/timeline default): the
// simulation is deterministic, so the rendered chart is a stable
// artifact. Regenerate with: go test ./internal/report -run Golden -update
func TestTimelineGolden(t *testing.T) {
	const procs = 3
	traces := make([][]overlap.Event, procs)
	cfg := cluster.Config{
		Procs: procs,
		MPI: mpi.Config{
			Protocol: mpi.DirectRDMARead,
			Instrument: &mpi.InstrumentConfig{
				TraceSinkFor: func(rank int) func(overlap.Event) {
					return func(e overlap.Event) { traces[rank] = append(traces[rank], e) }
				},
			},
		},
		RecordTruth: true,
	}
	res := cluster.Run(cfg, func(r *mpi.Rank) {
		right := (r.ID() + 1) % r.Size()
		left := (r.ID() - 1 + r.Size()) % r.Size()
		for step := 0; step < 4; step++ {
			s := r.Isend(right, step, 512<<10)
			q := r.Irecv(left, step)
			r.Compute(800 * time.Microsecond)
			r.Waitall(s, q)
		}
	})
	got := report.TimelineString(traces, res.Transfers,
		report.TimelineConfig{Width: 80, Duration: res.Duration})

	golden := filepath.Join("testdata", "timeline_ring.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("timeline output changed; run with -update if intentional.\ngot:\n%s\nwant:\n%s", got, want)
	}
}
