// Package report renders experiment results as aligned text tables —
// the rows and series each paper figure plots.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	if len(cells) != len(t.Headers) {
		panic(fmt.Sprintf("report: row has %d cells, table has %d columns", len(cells), len(t.Headers)))
	}
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		case float32:
			row[i] = fmt.Sprintf("%.1f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
