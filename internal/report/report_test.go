package report

import (
	"strings"
	"testing"
	"time"
)

func TestRenderAlignsColumns(t *testing.T) {
	tbl := NewTable("demo", "name", "value")
	tbl.AddRow("short", 1)
	tbl.AddRow("a-much-longer-name", 123456)
	out := tbl.String()

	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "demo" {
		t.Errorf("title line %q", lines[0])
	}
	// The value column must start at the same offset in every row.
	header := lines[1]
	col := strings.Index(header, "value")
	if col < 0 {
		t.Fatalf("no value header in %q", header)
	}
	if lines[3][col:col+1] != "1" {
		t.Errorf("row 1 misaligned: %q", lines[3])
	}
	if lines[4][col:col+1] != "1" {
		t.Errorf("row 2 misaligned: %q", lines[4])
	}
}

func TestFloatsRenderOneDecimal(t *testing.T) {
	tbl := NewTable("", "x")
	tbl.AddRow(3.14159)
	if !strings.Contains(tbl.String(), "3.1") || strings.Contains(tbl.String(), "3.14") {
		t.Errorf("float formatting wrong:\n%s", tbl.String())
	}
}

func TestDurationsRenderViaStringer(t *testing.T) {
	tbl := NewTable("", "d")
	tbl.AddRow(1500 * time.Microsecond)
	if !strings.Contains(tbl.String(), "1.5ms") {
		t.Errorf("duration formatting wrong:\n%s", tbl.String())
	}
}

func TestMismatchedRowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong arity")
		}
	}()
	NewTable("", "a", "b").AddRow(1)
}

func TestEmptyTitleOmitted(t *testing.T) {
	tbl := NewTable("", "h")
	tbl.AddRow("x")
	if strings.HasPrefix(tbl.String(), "\n") {
		t.Error("empty title should not emit a blank line")
	}
}
