package report

import (
	"fmt"
	"io"
	"strings"
	"time"

	"ovlp/internal/fabric"
	"ovlp/internal/overlap"
)

// Timeline rendering: an ASCII Gantt of each rank's activity —
// computing versus inside the communication library — with a second
// lane showing when that rank's NIC had data on the wire (from the
// fabric's ground-truth log). Laying the two lanes side by side makes
// achieved overlap visible at a glance: wire activity above '.'
// (computation) is hidden communication; above '#' (library time) it
// is exposed.

// TimelineConfig parameterizes RenderTimeline.
type TimelineConfig struct {
	// Width is the number of character buckets (default 100).
	Width int
	// Duration is the run length; 0 derives it from the inputs.
	Duration time.Duration
}

const (
	laneLib     = '#' // majority of the bucket inside library calls
	laneCompute = '.' // majority computing
	laneWire    = '=' // data from this rank's NIC on the wire
	laneIdle    = ' '
)

// RenderTimeline writes the activity chart. traces[r] is rank r's
// event stream (captured via overlap.Config.TraceSink); transfers is
// the fabric's ground-truth log.
func RenderTimeline(w io.Writer, traces [][]overlap.Event, transfers []fabric.Transfer, cfg TimelineConfig) error {
	width := cfg.Width
	if width <= 0 {
		width = 100
	}
	dur := cfg.Duration
	if dur == 0 {
		for _, evs := range traces {
			if n := len(evs); n > 0 && evs[n-1].Stamp > dur {
				dur = evs[n-1].Stamp
			}
		}
		for _, tr := range transfers {
			if d := tr.End.Duration(); d > dur {
				dur = d
			}
		}
	}
	if dur <= 0 {
		return fmt.Errorf("report: empty timeline")
	}
	bucket := dur / time.Duration(width)
	if bucket <= 0 {
		bucket = time.Nanosecond
	}

	if _, err := fmt.Fprintf(w, "timeline: %v total, %v per column ('%c' library, '%c' compute, '%c' wire)\n",
		dur, bucket, laneLib, laneCompute, laneWire); err != nil {
		return err
	}
	for rank, evs := range traces {
		host := hostLane(evs, dur, width)
		wire := wireLane(transfers, rank, dur, width)
		if _, err := fmt.Fprintf(w, "rank %-3d host |%s|\n         wire |%s|\n",
			rank, string(host), string(wire)); err != nil {
			return err
		}
	}
	return nil
}

// hostLane buckets library occupancy per column.
func hostLane(evs []overlap.Event, dur time.Duration, width int) []rune {
	libTime := make([]time.Duration, width)
	bucket := dur / time.Duration(width)
	if bucket <= 0 {
		bucket = time.Nanosecond
	}
	addLib := func(from, to time.Duration) {
		if to > dur {
			to = dur
		}
		for t := from; t < to; {
			i := int(t / bucket)
			if i >= width {
				break
			}
			end := time.Duration(i+1) * bucket
			if end > to {
				end = to
			}
			libTime[i] += end - t
			t = end
		}
	}
	depth := 0
	var enter time.Duration
	for _, e := range evs {
		switch e.Kind {
		case overlap.KindCallEnter:
			if depth == 0 {
				enter = e.Stamp
			}
			depth++
		case overlap.KindCallExit:
			depth--
			if depth == 0 {
				addLib(enter, e.Stamp)
			}
		}
	}
	if depth > 0 {
		addLib(enter, dur)
	}
	lane := make([]rune, width)
	for i := range lane {
		if libTime[i] > bucket/2 {
			lane[i] = laneLib
		} else {
			lane[i] = laneCompute
		}
	}
	return lane
}

// wireLane marks buckets during which the rank's NIC sourced data.
func wireLane(transfers []fabric.Transfer, rank int, dur time.Duration, width int) []rune {
	lane := make([]rune, width)
	for i := range lane {
		lane[i] = laneIdle
	}
	bucket := dur / time.Duration(width)
	if bucket <= 0 {
		bucket = time.Nanosecond
	}
	for _, tr := range transfers {
		if int(tr.Src) != rank {
			continue
		}
		from := int(tr.Start.Duration() / bucket)
		to := int(tr.End.Duration() / bucket)
		for i := from; i <= to && i < width; i++ {
			if i >= 0 {
				lane[i] = laneWire
			}
		}
	}
	return lane
}

// TimelineString renders to a string.
func TimelineString(traces [][]overlap.Event, transfers []fabric.Transfer, cfg TimelineConfig) string {
	var b strings.Builder
	if err := RenderTimeline(&b, traces, transfers, cfg); err != nil {
		return "(" + err.Error() + ")"
	}
	return b.String()
}
