package report

import (
	"strings"
	"testing"
	"time"

	"ovlp/internal/fabric"
	"ovlp/internal/overlap"
	"ovlp/internal/vtime"
)

func us(n int) time.Duration { return time.Duration(n) * time.Microsecond }

func TestRenderTimelineLanes(t *testing.T) {
	// One rank: library [0,25µs) and [75µs,100µs), compute between;
	// one wire transfer [30µs, 60µs) — fully over the compute span.
	traces := [][]overlap.Event{{
		{Kind: overlap.KindCallEnter, Stamp: 0},
		{Kind: overlap.KindCallExit, Stamp: us(25)},
		{Kind: overlap.KindCallEnter, Stamp: us(75)},
		{Kind: overlap.KindCallExit, Stamp: us(100)},
	}}
	transfers := []fabric.Transfer{{
		Src: 0, Dst: 1, Size: 1000,
		Start: vtime.Time(us(30)), End: vtime.Time(us(60)),
	}}
	out := TimelineString(traces, transfers, TimelineConfig{Width: 20, Duration: us(100)})

	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	host := lines[1][strings.Index(lines[1], "|")+1:]
	host = host[:strings.Index(host, "|")]
	wire := lines[2][strings.Index(lines[2], "|")+1:]
	wire = wire[:strings.Index(wire, "|")]
	if len(host) != 20 || len(wire) != 20 {
		t.Fatalf("lane widths %d/%d, want 20", len(host), len(wire))
	}
	// Buckets are 5µs: library fills [0,5) and [15,20); compute the
	// middle; wire covers buckets 6..12.
	if host[0] != '#' || host[19] != '#' {
		t.Errorf("library ends wrong: %q", host)
	}
	if host[10] != '.' {
		t.Errorf("middle should be compute: %q", host)
	}
	if wire[7] != '=' || wire[0] != ' ' || wire[19] != ' ' {
		t.Errorf("wire lane wrong: %q", wire)
	}
}

func TestRenderTimelineNestedCalls(t *testing.T) {
	traces := [][]overlap.Event{{
		{Kind: overlap.KindCallEnter, Stamp: 0},
		{Kind: overlap.KindCallEnter, Stamp: us(10)}, // nested
		{Kind: overlap.KindCallExit, Stamp: us(20)},
		{Kind: overlap.KindCallExit, Stamp: us(40)},
	}}
	out := TimelineString(traces, nil, TimelineConfig{Width: 4, Duration: us(40)})
	if !strings.Contains(out, "|####|") {
		t.Errorf("nested calls should render one continuous library span:\n%s", out)
	}
}

func TestRenderTimelineEmpty(t *testing.T) {
	out := TimelineString(nil, nil, TimelineConfig{})
	if !strings.Contains(out, "empty") {
		t.Errorf("expected empty-timeline error, got %q", out)
	}
}

func TestRenderTimelineUnclosedCall(t *testing.T) {
	traces := [][]overlap.Event{{
		{Kind: overlap.KindCallEnter, Stamp: us(5)},
	}}
	out := TimelineString(traces, nil, TimelineConfig{Width: 10, Duration: us(10)})
	if !strings.Contains(out, "#####") {
		t.Errorf("open call should extend to the end:\n%s", out)
	}
}
