package scenario

import (
	"errors"
	"fmt"
	"strings"

	"ovlp/internal/diagnose"
	"ovlp/internal/fabric"
	"ovlp/internal/mpi"
	"ovlp/internal/overlap"
	"ovlp/internal/vtime"
)

// Violation is one failed assertion, phrased so the failure output
// names the expectation and the observation side by side.
type Violation struct {
	Scenario string
	Check    string
	Expected string
	Observed string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %s: expected %s, observed %s", v.Scenario, v.Check, v.Expected, v.Observed)
}

// Skip is one assertion Evaluate deliberately did not check, with the
// named reason. A skip is not a violation — the run mode makes the
// check meaningless, not failed — but it is recorded rather than
// silently dropped so the output shows which guarantees were actually
// exercised.
type Skip struct {
	Scenario string
	Check    string
	Reason   string
}

func (s Skip) String() string {
	return fmt.Sprintf("%s: %s: %s", s.Scenario, s.Check, s.Reason)
}

// The named skip reasons. Byte-exact checks cannot hold when the run
// is shrunk (-smoke) or timed by the wall clock (-backend real).
const (
	skipSmokeBytes    = "smoke run: a shrunk run's bytes legitimately differ from the full-size golden"
	skipSmokeTimeRes  = "smoke run: a shrunk run's windows legitimately differ from the full-size run's"
	skipRealClockHash = "real-clock run: wall-clock timestamps are nondeterministic, so byte-exact hashes cannot hold"
	skipRealClockRun  = "real-clock run: wall-clock scheduling is nondeterministic, so a rerun is not byte-identical"
)

// Evaluate checks every assertion of the run's scenario and returns
// the violations (empty means the scenario passes). A scenario with
// no explicit "error" assertion implicitly asserts the run finished
// cleanly: an unexpected run error is itself a violation. Assertions
// the run mode makes meaningless (hash checks under -smoke or on the
// real clock) are recorded in rr.Skips with a named reason rather
// than silently passed over.
func Evaluate(rr *RunResult) []Violation {
	s := rr.Scenario
	var out []Violation
	add := func(check, expected, observed string) {
		out = append(out, Violation{Scenario: s.Name, Check: check, Expected: expected, Observed: observed})
	}
	rr.Skips = nil // idempotent across re-evaluation
	skip := func(check, reason string) {
		rr.Skips = append(rr.Skips, Skip{Scenario: s.Name, Check: check, Reason: reason})
	}

	expectsError := false
	for i := range s.Assertions {
		if s.Assertions[i].Check == "error" {
			expectsError = true
		}
	}
	if !expectsError && rr.Err != nil {
		add("clean-run", "run finishes without error", rr.Err.Error())
	}

	for i := range s.Assertions {
		a := &s.Assertions[i]
		switch a.Check {
		case "overlap":
			checkOverlap(rr, a, add)
		case "blame_share":
			checkBlameShare(rr, a, add)
		case "error":
			if msg := matchError(rr, a, true); msg != "" {
				add("error", describeErrorWant(a), msg)
			}
		case "error_absent":
			if msg := matchError(rr, a, false); msg != "" {
				add("error_absent", "no "+describeErrorWant(a), msg)
			}
		case "bounds_valid":
			checkBoundsValid(rr, add)
		case "conservation":
			checkConservation(rr, add)
		case "determinism":
			if rr.realClock() {
				skip("determinism", skipRealClockRun)
				continue
			}
			checkDeterminism(rr, add)
		case "trace_hash":
			if rr.realClock() {
				skip("trace_hash", skipRealClockHash)
				continue
			}
			if rr.Opts.Smoke {
				skip("trace_hash", skipSmokeBytes)
				continue
			}
			if rr.TraceHash != a.Hash {
				add("trace_hash", a.Hash, rr.TraceHash)
			}
		case "report_hash":
			if rr.realClock() {
				skip("report_hash", skipRealClockHash)
				continue
			}
			if rr.Opts.Smoke {
				skip("report_hash", skipSmokeBytes)
				continue
			}
			if rr.ReportHash != a.Hash {
				add("report_hash", a.Hash, rr.ReportHash)
			}
		case "duration":
			if rr.Res.Duration > a.Max.D() {
				add("duration", fmt.Sprintf("virtual time <= %v", a.Max.D()),
					rr.Res.Duration.String())
			}
		case "time_resolved":
			if rr.Opts.Smoke {
				skip("time_resolved", skipSmokeTimeRes)
				continue
			}
			checkTimeResolved(rr, a, add)
		case "finding":
			checkFinding(rr, a, true, add)
		case "finding_absent":
			checkFinding(rr, a, false, add)
		}
	}
	return out
}

// checkOverlap asserts the true overlap percentage of the scoped
// measures lies in [min_pct, max_pct]: since the framework reports
// bounds that bracket the truth, the assertion fails only when even
// the optimistic bound is below min_pct (or the pessimistic bound
// above max_pct), beyond the tolerance.
func checkOverlap(rr *RunResult, a *Assertion, add func(check, expected, observed string)) {
	m, scope, ok := scopedMeasures(rr, a)
	if !ok {
		add("overlap", fmt.Sprintf("measures for %s", scope), "no instrumentation data")
		return
	}
	if m.Count == 0 {
		add("overlap", fmt.Sprintf("transfers in %s", scope), "0 transfers")
		return
	}
	obs := fmt.Sprintf("%s overlap bounds [%.1f%%, %.1f%%]", scope, m.MinPercent(), m.MaxPercent())
	if a.MinPct != nil && m.MaxPercent() < *a.MinPct-a.TolPct {
		add("overlap", fmt.Sprintf("overlap >= %.1f%% (tol %.1f)", *a.MinPct, a.TolPct), obs)
	}
	if a.MaxPct != nil && m.MinPercent() > *a.MaxPct+a.TolPct {
		add("overlap", fmt.Sprintf("overlap <= %.1f%% (tol %.1f)", *a.MaxPct, a.TolPct), obs)
	}
}

func scopedMeasures(rr *RunResult, a *Assertion) (overlap.Measures, string, bool) {
	scope := "total"
	var rep *overlap.Report
	if a.Rank != nil {
		scope = fmt.Sprintf("rank %d", *a.Rank)
		if *a.Rank >= len(rr.Res.Reports) || rr.Res.Reports[*a.Rank] == nil {
			return overlap.Measures{}, scope, false
		}
		rep = rr.Res.Reports[*a.Rank]
	} else {
		rep = overlap.Aggregate(rr.Res.Reports)
	}
	if a.Region != "" {
		scope += " region " + a.Region
		reg := rep.Region(a.Region)
		if reg == nil {
			return overlap.Measures{}, scope, false
		}
		return reg.Total, scope, true
	}
	return rep.Total(), scope, true
}

func checkBlameShare(rr *RunResult, a *Assertion, add func(check, expected, observed string)) {
	if rr.Profile == nil {
		add("blame_share", "an offline profile", "profile analysis unavailable for this run")
		return
	}
	names, vals := rr.Profile.Totals.Blame.Columns()
	gap := rr.Profile.Totals.Gap
	var share float64
	for i, n := range names {
		if n == a.Category {
			if gap > 0 {
				share = 100 * float64(vals[i]) / float64(gap)
			}
		}
	}
	obs := fmt.Sprintf("%s share %.1f%% of %v gap", a.Category, share, gap)
	if a.MinShare != nil && share < *a.MinShare {
		add("blame_share", fmt.Sprintf("%s share >= %.1f%%", a.Category, *a.MinShare), obs)
	}
	if a.MaxShare != nil && share > *a.MaxShare {
		add("blame_share", fmt.Sprintf("%s share <= %.1f%%", a.Category, *a.MaxShare), obs)
	}
}

func describeErrorWant(a *Assertion) string {
	where := "on any rank"
	if a.Rank != nil {
		where = fmt.Sprintf("on rank %d", *a.Rank)
	}
	return fmt.Sprintf("%s error %s", a.Error, where)
}

// matchError checks the expected-error (want=true) or proven-absent
// (want=false) condition and returns "" on success or the observation
// text on failure.
func matchError(rr *RunResult, a *Assertion, want bool) string {
	matched, found := findError(rr, a)
	if want {
		if matched {
			return ""
		}
		if found != "" {
			return "different error: " + found
		}
		return "run finished cleanly"
	}
	if !matched {
		return ""
	}
	return found
}

// findError reports whether the expected error kind is present in the
// assertion's scope, plus a description of whatever error was seen.
func findError(rr *RunResult, a *Assertion) (matched bool, seen string) {
	kindMatch := func(err error) bool {
		if err == nil {
			return false
		}
		switch a.Error {
		case "timeout":
			return errors.Is(err, mpi.ErrTimeout)
		case "peer_unreachable":
			return errors.Is(err, mpi.ErrPeerUnreachable)
		case "deadlock":
			var de *vtime.DeadlockError
			return errors.As(err, &de)
		default: // "any"
			return true
		}
	}
	if a.Rank != nil {
		var err error
		if *a.Rank < len(rr.Res.RankErrors) {
			err = rr.Res.RankErrors[*a.Rank]
		}
		if err != nil {
			seen = fmt.Sprintf("rank %d: %v", *a.Rank, err)
		}
		return kindMatch(err), seen
	}
	if rr.Err != nil {
		seen = rr.Err.Error()
	}
	if kindMatch(rr.Err) {
		return true, seen
	}
	for rank, err := range rr.Res.RankErrors {
		if kindMatch(err) {
			return true, fmt.Sprintf("rank %d: %v", rank, err)
		}
	}
	return false, seen
}

// checkBoundsValid runs the independent oracle over every rank's raw
// event stream (see oracle.go).
func checkBoundsValid(rr *RunResult, add func(check, expected, observed string)) {
	if rr.Res.Calib == nil {
		add("bounds_valid", "a calibrated instrumented run", "no calibration table in result")
		return
	}
	plan, err := rr.Scenario.FaultPlan()
	if err != nil {
		add("bounds_valid", "compilable chaos schedule", err.Error())
		return
	}
	truth := rr.truthByID()
	cost := fabric.DefaultCostModel()
	for rank := 0; rank < rr.Procs; rank++ {
		var rep *overlap.Report
		if rank < len(rr.Res.Reports) {
			rep = rr.Res.Reports[rank]
		}
		if rep == nil && len(rr.Events[rank]) == 0 {
			continue // rank wedged before finalize: nothing to replay
		}
		if msg := checkBounds(rank, rr.Events[rank], rep, truth, rr.Res.Calib, cost, plan); msg != "" {
			add("bounds_valid", "min <= true overlap <= max per transfer", msg)
			return
		}
	}
}

// checkConservation asserts the profiler's attribution conserves the
// quantity it explains: the job-wide attributed gap equals the
// overlap report's max−min bound gap exactly, and the per-category
// blame sums back to it.
func checkConservation(rr *RunResult, add func(check, expected, observed string)) {
	if rr.Profile == nil {
		add("conservation", "an offline profile", "profile analysis unavailable for this run")
		return
	}
	agg := overlap.Aggregate(rr.Res.Reports).Total()
	repGap := agg.MaxOverlapped - agg.MinOverlapped
	tot := rr.Profile.Totals
	if tot.Gap != repGap {
		add("conservation", fmt.Sprintf("attributed gap == report gap %v", repGap),
			fmt.Sprintf("attributed gap %v", tot.Gap))
	}
	if bt := tot.Blame.Total(); bt != tot.Gap {
		add("conservation", fmt.Sprintf("blame categories sum to gap %v", tot.Gap),
			fmt.Sprintf("categories sum to %v", bt))
	}
}

// checkTimeResolved asserts the minimum of the named efficiency over
// the scoped windows (or phases) stays inside [min_eff, max_eff]
// within tolerance. An empty scope is itself a violation: an assertion
// that selects nothing proves nothing.
func checkTimeResolved(rr *RunResult, a *Assertion, add func(check, expected, observed string)) {
	scope := "windows"
	if a.Phase != "" {
		scope = a.Phase + " phases"
	}
	if a.From > 0 || a.To > 0 {
		to := "end"
		if a.To > 0 {
			to = a.To.D().String()
		}
		scope += fmt.Sprintf(" in [%v, %s)", a.From.D(), to)
	}
	if rr.TimeRes == nil {
		add("time_resolved", "time-resolved metrics for the run", "analyzer produced no snapshot")
		return
	}
	min, n, err := rr.TimeRes.MinMetric(a.Metric, a.From.D(), a.To.D(), a.Phase)
	if err != nil {
		add("time_resolved", "a known metric", err.Error())
		return
	}
	if n == 0 {
		add("time_resolved", fmt.Sprintf("at least one of the %s", scope), "scope selected no slices")
		return
	}
	obs := fmt.Sprintf("min %s %.4f over %d %s", a.Metric, min, n, scope)
	if a.MinEff != nil && min < *a.MinEff-a.TolEff {
		add("time_resolved", fmt.Sprintf("min %s >= %.4f (tol %.4f)", a.Metric, *a.MinEff, a.TolEff), obs)
	}
	if a.MaxEff != nil && min > *a.MaxEff+a.TolEff {
		add("time_resolved", fmt.Sprintf("min %s <= %.4f (tol %.4f)", a.Metric, *a.MaxEff, a.TolEff), obs)
	}
}

// checkFinding asserts the diagnosis engine emitted (want=true) or did
// not emit (want=false) a finding of the assertion's kind, at severity
// >= min_severity, whose scope string contains the scope substring
// when one is given. Unlike the hash checks this runs under -smoke:
// the diagnosed condition is structural and the corpus scenarios are
// written to exhibit it at both sizes.
func checkFinding(rr *RunResult, a *Assertion, want bool, add func(check, expected, observed string)) {
	check := "finding"
	if !want {
		check = "finding_absent"
	}
	expected := fmt.Sprintf("finding %s", a.Kind)
	if a.Scope != "" {
		expected += fmt.Sprintf(" scoped to %q", a.Scope)
	}
	if a.MinSeverity != "" {
		expected += " at severity >= " + a.MinSeverity
	}
	if !want {
		expected = "no " + expected
	}
	if rr.Findings == nil {
		add(check, expected, "diagnosis unavailable for this run")
		return
	}
	var match *diagnose.Finding
	for i := range rr.Findings.Findings {
		f := &rr.Findings.Findings[i]
		if f.Kind != a.Kind {
			continue
		}
		if a.Scope != "" && !strings.Contains(f.Scope.String(), a.Scope) {
			continue
		}
		if a.MinSeverity != "" &&
			diagnose.SeverityRank(f.Severity) < diagnose.SeverityRank(a.MinSeverity) {
			continue
		}
		match = f
		break
	}
	if want && match == nil {
		add(check, expected, describeFindings(rr.Findings))
	}
	if !want && match != nil {
		add(check, expected, fmt.Sprintf("[%s] %s", match.Severity, match.Summary))
	}
}

// describeFindings summarizes what the engine did emit, so a failed
// `finding` assertion names the alternatives seen.
func describeFindings(rep *diagnose.Report) string {
	if len(rep.Findings) == 0 {
		return "no findings"
	}
	kinds := make([]string, len(rep.Findings))
	for i, f := range rep.Findings {
		kinds[i] = fmt.Sprintf("%s[%s] %s", f.Kind, f.Severity, f.Scope)
	}
	return "findings: " + strings.Join(kinds, "; ")
}

// checkDeterminism reruns the scenario in-process and compares the
// artifact hashes — same seed, same bytes. The rerun sheds any live
// sink: a viewer fed twice would double-count, and the sink is not
// part of the determinism domain.
func checkDeterminism(rr *RunResult, add func(check, expected, observed string)) {
	opts := rr.Opts
	opts.Sink = nil
	again, err := Run(rr.Scenario, opts)
	if err != nil {
		add("determinism", "a repeatable run", "rerun failed: "+err.Error())
		return
	}
	if again.TraceHash != rr.TraceHash {
		add("determinism", "identical trace hash "+short(rr.TraceHash), "rerun produced "+short(again.TraceHash))
	}
	if again.ReportHash != rr.ReportHash {
		add("determinism", "identical report hash "+short(rr.ReportHash), "rerun produced "+short(again.ReportHash))
	}
}
