package scenario

// The assertion taxonomy as data. checkDocs is the single source the
// validator derives its known-check vocabulary from and that
// cmd/scenario -list-checks renders, so the printed catalogue cannot
// drift from what Validate accepts; a test cross-checks every listed
// field against the Assertion struct's JSON tags.

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"ovlp/internal/diagnose"
	"ovlp/internal/timeres"
)

// CheckDoc documents one assertion kind: the check name, the
// Assertion fields (JSON names) that parameterize it, and a one-line
// summary of what it proves.
type CheckDoc struct {
	Name    string
	Fields  []string
	Summary string
}

// checkDocs lists every assertion kind, in the order scenarios
// usually declare them.
var checkDocs = []CheckDoc{
	{"overlap", []string{"region", "rank", "min_pct", "max_pct", "tol_pct"},
		"a region's measured min/max overlap percent must fall inside the declared bounds"},
	{"blame_share", []string{"category", "min_share", "max_share"},
		"the named blame category's share of the profiler's attributed gap must lie in [min_share, max_share]"},
	{"error", []string{"error", "rank"},
		"a structured error must occur — on the given rank when rank is set, anywhere otherwise"},
	{"error_absent", []string{"error", "rank"},
		"the structured error must not occur (error defaults to any)"},
	{"bounds_valid", nil,
		"min <= true <= max for every transfer, against the simulator's ground-truth wire records"},
	{"conservation", nil,
		"the oracle's replayed totals equal the instrumentation's report, per rank and whole-run"},
	{"determinism", nil,
		"an immediate rerun with the same seed produces byte-identical trace and report"},
	{"trace_hash", []string{"hash"},
		"sha256 of the Chrome trace bytes equals the pinned golden hash (skipped under -smoke)"},
	{"report_hash", []string{"hash"},
		"sha256 of the run-report JSON equals the pinned golden hash (skipped under -smoke)"},
	{"duration", []string{"max"},
		"the run's virtual wall time must not exceed max"},
	{"time_resolved", []string{"metric", "phase", "window", "from", "to", "min_eff", "max_eff", "tol_eff"},
		"a windowed efficiency metric must stay inside [min_eff, max_eff] over [from, to) (skipped under -smoke)"},
	{"finding", []string{"kind", "scope", "min_severity"},
		"the diagnosis engine must emit a finding of kind, at severity >= min_severity, whose scope contains scope"},
	{"finding_absent", []string{"kind", "scope", "min_severity"},
		"the diagnosis engine must not emit a matching finding"},
}

// knownChecks is the validation vocabulary, derived from the doc
// table so the two cannot disagree.
var knownChecks = func() []string {
	names := make([]string, len(checkDocs))
	for i, d := range checkDocs {
		names[i] = d.Name
	}
	return names
}()

// Checks returns the assertion taxonomy (a copy — callers may not
// mutate the source table).
func Checks() []CheckDoc {
	out := make([]CheckDoc, len(checkDocs))
	copy(out, checkDocs)
	return out
}

// WriteChecks renders the taxonomy and the closed vocabularies its
// fields draw from (cmd/scenario -list-checks).
func WriteChecks(w io.Writer) error {
	tw := &errWriter{w: w}
	tw.printf("Assertion checks (scenario assert: entries):\n\n")
	for _, d := range checkDocs {
		fields := "no parameters"
		if len(d.Fields) > 0 {
			fields = strings.Join(d.Fields, ", ")
		}
		tw.printf("  %-15s %s\n", d.Name, d.Summary)
		tw.printf("  %-15s fields: %s\n\n", "", fields)
	}
	tw.printf("Vocabularies:\n\n")
	tw.printf("  error:          %s\n", strings.Join(sortedKeys(errorNames), ", "))
	tw.printf("  category:       %s\n", strings.Join(sortedKeys(blameCategories), ", "))
	tw.printf("  metric:         %s\n", strings.Join(timeres.MetricNames(), ", "))
	tw.printf("  kind (finding): %s\n", strings.Join(diagnose.AnalyzeKinds(), ", "))
	tw.printf("  min_severity:   %s, %s, %s\n", diagnose.SevInfo, diagnose.SevWarn, diagnose.SevCritical)
	return tw.err
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// errWriter folds per-line write errors into one.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err == nil {
		_, e.err = fmt.Fprintf(e.w, format, args...)
	}
}
