package scenario

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// assertionTags collects the Assertion struct's JSON field names.
func assertionTags(t *testing.T) map[string]bool {
	t.Helper()
	tags := map[string]bool{}
	rt := reflect.TypeOf(Assertion{})
	for i := 0; i < rt.NumField(); i++ {
		tag := rt.Field(i).Tag.Get("json")
		name, _, _ := strings.Cut(tag, ",")
		if name != "" && name != "-" {
			tags[name] = true
		}
	}
	return tags
}

// TestCheckDocsMatchAssertionFields: every field the doc table lists
// must exist on the Assertion struct, and every Assertion parameter
// must be documented by at least one check — the no-drift contract of
// -list-checks.
func TestCheckDocsMatchAssertionFields(t *testing.T) {
	tags := assertionTags(t)
	documented := map[string]bool{"check": true}
	seen := map[string]bool{}
	for _, d := range checkDocs {
		if d.Name == "" || d.Summary == "" {
			t.Errorf("check %+v needs a name and a summary", d)
		}
		if seen[d.Name] {
			t.Errorf("check %q documented twice", d.Name)
		}
		seen[d.Name] = true
		for _, f := range d.Fields {
			if !tags[f] {
				t.Errorf("check %q lists field %q, which Assertion does not have", d.Name, f)
			}
			documented[f] = true
		}
	}
	for tag := range tags {
		if !documented[tag] {
			t.Errorf("Assertion field %q is documented by no check", tag)
		}
	}
}

// TestKnownChecksDerived: the validator's vocabulary is the doc
// table's names, in order.
func TestKnownChecksDerived(t *testing.T) {
	if len(knownChecks) != len(checkDocs) {
		t.Fatalf("knownChecks has %d entries, checkDocs %d", len(knownChecks), len(checkDocs))
	}
	for i, d := range checkDocs {
		if knownChecks[i] != d.Name {
			t.Errorf("knownChecks[%d] = %q, want %q", i, knownChecks[i], d.Name)
		}
	}
}

// TestWriteChecksListsVocabularies: the rendered catalogue names every
// check and the closed vocabularies, including the recovery additions.
func TestWriteChecksListsVocabularies(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChecks(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range append(knownChecks,
		"rank-failure", "detect", "rollback", "par_eff", "critical") {
		if !strings.Contains(out, want) {
			t.Errorf("catalogue missing %q:\n%s", want, out)
		}
	}
}
