package scenario

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ovlp/internal/diagnose"
)

const corpusDir = "../../scenarios"

// TestCorpusShape pins the corpus contract from the issue: at least
// ten committed scenarios, of which at least three came out of the
// seeded generator, and a golden report for every one of them.
func TestCorpusShape(t *testing.T) {
	scenarios, err := LoadDir(corpusDir)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if len(scenarios) < 10 {
		t.Fatalf("corpus has %d scenarios, want >= 10", len(scenarios))
	}
	gen := 0
	for _, s := range scenarios {
		if strings.HasPrefix(s.Name, "gen-") {
			gen++
		}
		golden := filepath.Join(corpusDir, "golden", s.Name+".json")
		if _, err := os.Stat(golden); err != nil {
			t.Errorf("scenario %s has no golden report: %v", s.Name, err)
		}
	}
	if gen < 3 {
		t.Errorf("corpus has %d generated scenarios, want >= 3", gen)
	}
}

// TestCorpusSmoke runs every committed scenario in smoke mode (the CI
// configuration) and requires zero assertion violations.
func TestCorpusSmoke(t *testing.T) {
	scenarios, err := LoadDir(corpusDir)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	for _, s := range scenarios {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			rr, err := Run(s, Opts{Smoke: true})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			for _, v := range Evaluate(rr) {
				t.Errorf("violation: %s", v)
			}
		})
	}
}

// TestCorpusFullMatchesGoldens runs every committed scenario at full
// size, requires zero violations, and byte-compares the produced
// report against the committed golden. Scenarios that also commit a
// findings golden (<name>.findings.json) get their diagnosis JSON
// byte-compared the same way. A drift here means either a regression
// in the simulator/instrumentation or an intentional behaviour
// change; regenerate with
//
//	go run ./cmd/scenario -golden scenarios/golden -write-golden scenarios/
//	go run ./cmd/scenario -findings scenarios/golden scenarios/09-phase-collapse.yaml scenarios/10-straggler.yaml
//
// only after deciding the change is intentional.
func TestCorpusFullMatchesGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size corpus run skipped in -short mode")
	}
	scenarios, err := LoadDir(corpusDir)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	for _, s := range scenarios {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			rr, err := Run(s, Opts{Findings: true})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			for _, v := range Evaluate(rr) {
				t.Errorf("violation: %s", v)
			}
			golden, err := os.ReadFile(filepath.Join(corpusDir, "golden", s.Name+".json"))
			if err != nil {
				t.Fatalf("golden: %v", err)
			}
			if !bytes.Equal(rr.ReportBytes, golden) {
				t.Errorf("report drifted from golden (%d vs %d bytes); regenerate with -write-golden if intentional",
					len(rr.ReportBytes), len(golden))
			}
			fGolden, err := os.ReadFile(filepath.Join(corpusDir, "golden", s.Name+".findings.json"))
			if os.IsNotExist(err) {
				return // findings goldens are only committed for some scenarios
			}
			if err != nil {
				t.Fatalf("findings golden: %v", err)
			}
			if rr.Findings == nil {
				t.Fatal("findings golden committed but run produced no diagnosis")
			}
			var buf bytes.Buffer
			if err := diagnose.WriteJSON(&buf, rr.Findings); err != nil {
				t.Fatalf("WriteJSON: %v", err)
			}
			if !bytes.Equal(buf.Bytes(), fGolden) {
				t.Errorf("findings drifted from golden (%d vs %d bytes); regenerate with cmd/scenario -findings if intentional",
					buf.Len(), len(fGolden))
			}
		})
	}
}
