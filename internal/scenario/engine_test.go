package scenario

import (
	"strings"
	"testing"
	"time"
)

func calmScenario() *Scenario {
	return &Scenario{
		Name: "calm", Seed: 1, Procs: 4, Deadline: Dur(2 * time.Second),
		Workload: Workload{
			Kind: "exchange", Size: 64 << 10, Reps: 6,
			Compute: Dur(300 * time.Microsecond),
		},
	}
}

func fptr(f float64) *float64 { return &f }
func iptr(i int) *int         { return &i }

func TestRunCalmScenarioDeterministic(t *testing.T) {
	s := calmScenario()
	a, err := Run(s, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Err != nil {
		t.Fatalf("calm run errored: %v", a.Err)
	}
	b, err := Run(s, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	if a.TraceHash != b.TraceHash {
		t.Fatalf("trace hash differs across identical runs: %s vs %s", a.TraceHash, b.TraceHash)
	}
	if a.ReportHash != b.ReportHash {
		t.Fatalf("report hash differs: %s vs %s", a.ReportHash, b.ReportHash)
	}
	if string(a.TraceBytes) != string(b.TraceBytes) {
		t.Fatal("trace bytes differ despite equal hashes?")
	}
	if string(a.ReportBytes) != string(b.ReportBytes) {
		t.Fatal("report bytes differ")
	}
}

func TestAssertionsPassOnCalmRun(t *testing.T) {
	s := calmScenario()
	s.Assertions = []Assertion{
		{Check: "bounds_valid"},
		{Check: "conservation"},
		{Check: "determinism"},
		{Check: "error_absent", Error: "any"},
		{Check: "duration", Max: Dur(2 * time.Second)},
		{Check: "overlap", Region: RegionExchange, MinPct: fptr(5), TolPct: 2},
	}
	rr, err := Run(s, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	if vs := Evaluate(rr); len(vs) != 0 {
		for _, v := range vs {
			t.Errorf("unexpected violation: %s", v)
		}
	}
}

func TestGoldenHashAssertions(t *testing.T) {
	s := calmScenario()
	rr, err := Run(s, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	s.Assertions = []Assertion{
		{Check: "trace_hash", Hash: rr.TraceHash},
		{Check: "report_hash", Hash: rr.ReportHash},
	}
	rr2, err := Run(s, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	if vs := Evaluate(rr2); len(vs) != 0 {
		t.Fatalf("golden hashes did not verify: %v", vs)
	}
	// A wrong hash must be reported with expected and observed.
	s.Assertions[0].Hash = strings.Repeat("0", 64)
	rr3, err := Run(s, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	vs := Evaluate(rr3)
	if len(vs) != 1 || vs[0].Check != "trace_hash" {
		t.Fatalf("violations = %v", vs)
	}
	if vs[0].Expected != strings.Repeat("0", 64) || vs[0].Observed != rr3.TraceHash {
		t.Fatalf("violation detail = %+v", vs[0])
	}
	// Smoke mode skips golden hashes (different bytes by design).
	smoke, err := Run(s, Opts{Smoke: true})
	if err != nil {
		t.Fatal(err)
	}
	if vs := Evaluate(smoke); len(vs) != 0 {
		t.Fatalf("smoke run must skip golden hashes, got %v", vs)
	}
}

func TestChaosScenarioBoundsStayValid(t *testing.T) {
	s := &Scenario{
		Name: "chaotic", Seed: 9, Procs: 4, Deadline: Dur(5 * time.Second),
		Workload: Workload{
			Kind: "exchange", Size: 32 << 10, Reps: 8,
			Compute: Dur(200 * time.Microsecond),
		},
		Chaos: []ChaosEvent{
			{Label: "outage", At: Dur(500 * time.Microsecond), Clear: Dur(2 * time.Millisecond),
				Drop: 0.3, Nodes: []int{0, 1}},
			{Label: "ramp", At: Dur(time.Millisecond), Ramp: Dur(time.Millisecond),
				Clear: Dur(4 * time.Millisecond), Bandwidth: 0.3},
			{Label: "spike", At: Dur(3 * time.Millisecond), Clear: Dur(3500 * time.Microsecond),
				Jitter: Dur(4 * time.Microsecond), Dup: 0.1},
		},
		Stalls: []Stall{{Node: 2, Start: Dur(time.Millisecond), Dur: Dur(80 * time.Microsecond)}},
		Assertions: []Assertion{
			{Check: "bounds_valid"},
			{Check: "conservation"},
			{Check: "determinism"},
			{Check: "error_absent", Error: "any"},
		},
	}
	rr, err := Run(s, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Res.FaultStats.Dropped == 0 && rr.Res.FaultStats.Jittered == 0 &&
		rr.Res.FaultStats.Stalled == 0 {
		t.Fatalf("chaos schedule injected nothing: %+v", rr.Res.FaultStats)
	}
	if vs := Evaluate(rr); len(vs) != 0 {
		for _, v := range vs {
			t.Errorf("violation under chaos: %s", v)
		}
	}
}

func TestExpectedErrorScenario(t *testing.T) {
	// A hard partition with a tiny retry budget must surface structured
	// timeouts on both partitioned ranks — and the error assertion turns
	// that into a passing scenario.
	s := &Scenario{
		Name: "partition", Seed: 2, Procs: 2, Deadline: Dur(time.Second),
		Reliable: &ReliableSpec{Timeout: Dur(20 * time.Microsecond), MaxRetries: 2},
		Workload: Workload{Kind: "exchange", Size: 32 << 10, Reps: 2,
			Compute: Dur(50 * time.Microsecond)},
		Chaos: []ChaosEvent{{Label: "partition", At: 0, Drop: 1.0}},
		Assertions: []Assertion{
			{Check: "error", Error: "peer_unreachable", Rank: iptr(0)},
			{Check: "error", Error: "peer_unreachable", Rank: iptr(1)},
			{Check: "error", Error: "any"},
		},
	}
	rr, err := Run(s, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Err == nil {
		t.Fatal("partition run finished cleanly?")
	}
	if vs := Evaluate(rr); len(vs) != 0 {
		t.Fatalf("expected-error assertions failed: %v", vs)
	}
	// The same run with error_absent must report the violation.
	s.Assertions = []Assertion{{Check: "error_absent", Error: "any"}}
	rr2, err := Run(s, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	vs := Evaluate(rr2)
	found := false
	for _, v := range vs {
		if v.Check == "error_absent" && strings.Contains(v.Observed, "unreachable") {
			found = true
		}
	}
	if !found {
		t.Fatalf("error_absent violation missing: %v", vs)
	}
}

func TestUnexpectedErrorIsViolation(t *testing.T) {
	s := &Scenario{
		Name: "surprise", Seed: 2, Procs: 2, Deadline: Dur(time.Second),
		Reliable: &ReliableSpec{Timeout: Dur(20 * time.Microsecond), MaxRetries: 2},
		Workload: Workload{Kind: "exchange", Size: 32 << 10, Reps: 2,
			Compute: Dur(50 * time.Microsecond)},
		Chaos: []ChaosEvent{{At: 0, Drop: 1.0}},
	}
	rr, err := Run(s, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	vs := Evaluate(rr)
	if len(vs) != 1 || vs[0].Check != "clean-run" {
		t.Fatalf("violations = %v", vs)
	}
}

func TestSmokeClampsButKeepsStructure(t *testing.T) {
	s := &Scenario{
		Name: "wide", Seed: 4, Procs: 12, Deadline: Dur(5 * time.Second),
		Workload: Workload{Kind: "exchange", Size: 16 << 10, Reps: 50,
			Compute: Dur(100 * time.Microsecond)},
		// Chaos touching node 5 keeps the smoke machine at >= 6 nodes.
		Chaos: []ChaosEvent{{At: 0, Clear: Dur(time.Millisecond), Drop: 0.2, Nodes: []int{5}}},
	}
	rr, err := Run(s, Opts{Smoke: true})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Procs != 6 {
		t.Fatalf("smoke procs = %d, want MinProcs 6", rr.Procs)
	}
	if rr.Err != nil {
		t.Fatalf("smoke run errored: %v", rr.Err)
	}
}

func TestGenerateDeterministicCorpus(t *testing.T) {
	a := Generate(77, 6)
	b := Generate(77, 6)
	if len(a) != 6 {
		t.Fatalf("generated %d scenarios", len(a))
	}
	seen := map[string]bool{}
	for i := range a {
		ja, err := a[i].EncodeJSON()
		if err != nil {
			t.Fatal(err)
		}
		jb, err := b[i].EncodeJSON()
		if err != nil {
			t.Fatal(err)
		}
		if string(ja) != string(jb) {
			t.Fatalf("generator not deterministic at %d:\n%s\nvs\n%s", i, ja, jb)
		}
		if seen[a[i].Name] {
			t.Fatalf("duplicate generated name %q", a[i].Name)
		}
		seen[a[i].Name] = true
	}
	// A different seed must change the corpus.
	c := Generate(78, 6)
	jc, _ := c[0].EncodeJSON()
	ja, _ := a[0].EncodeJSON()
	if string(jc) == string(ja) {
		t.Fatal("different seeds produced identical scenarios")
	}
}

func TestGeneratedScenarioRunsCleanInSmoke(t *testing.T) {
	for _, s := range Generate(5, 4) {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			rr, err := Run(s, Opts{Smoke: true})
			if err != nil {
				t.Fatal(err)
			}
			if vs := Evaluate(rr); len(vs) != 0 {
				for _, v := range vs {
					t.Errorf("violation: %s", v)
				}
			}
		})
	}
}
