package scenario

import (
	"testing"
)

// findingScenario is the calm scenario plus finding assertions.
func findingScenario(asserts ...Assertion) *Scenario {
	s := calmScenario()
	s.Name = "finding"
	s.Assertions = asserts
	return s
}

// TestFindingAssertionEvaluates: a calm run diagnoses clean, so
// demanding a straggler finding violates and asserting its absence
// passes — and the finding checks run under smoke too, unlike the
// hash checks.
func TestFindingAssertionEvaluates(t *testing.T) {
	s := findingScenario(
		Assertion{Check: "finding", Kind: "straggler-rank"},
	)
	rr, err := Run(s, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Findings == nil {
		t.Fatal("run with finding assertions has no diagnosis report")
	}
	vs := Evaluate(rr)
	if len(vs) != 1 || vs[0].Check != "finding" {
		t.Fatalf("missing finding not violated: %v", vs)
	}

	s = findingScenario(
		Assertion{Check: "finding_absent", Kind: "straggler-rank"},
		Assertion{Check: "finding_absent", Kind: "retransmit-storm"},
	)
	rr, err = Run(s, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	if vs := Evaluate(rr); len(vs) != 0 {
		t.Fatalf("clean run violated finding_absent: %v", vs)
	}

	// Smoke mode must still evaluate the checks (structural, not
	// byte-level): the missing finding stays a violation.
	s = findingScenario(Assertion{Check: "finding", Kind: "straggler-rank"})
	smoke, err := Run(s, Opts{Smoke: true})
	if err != nil {
		t.Fatal(err)
	}
	vs = Evaluate(smoke)
	if len(vs) != 1 || vs[0].Check != "finding" {
		t.Fatalf("smoke run skipped the finding check: %v", vs)
	}
}

func TestFindingValidation(t *testing.T) {
	bad := []struct {
		name string
		a    Assertion
	}{
		{"no-kind", Assertion{Check: "finding"}},
		{"unknown-kind", Assertion{Check: "finding", Kind: "slow-computer"}},
		{"diff-only-kind", Assertion{Check: "finding", Kind: "gap-regression"}},
		{"bad-severity", Assertion{Check: "finding", Kind: "straggler-rank", MinSeverity: "fatal"}},
		{"absent-unknown-kind", Assertion{Check: "finding_absent", Kind: "nope"}},
	}
	for _, c := range bad {
		t.Run(c.name, func(t *testing.T) {
			if err := findingScenario(c.a).Validate(); err == nil {
				t.Errorf("%s accepted", c.name)
			}
		})
	}
	ok := findingScenario(
		Assertion{Check: "finding", Kind: "straggler-rank", Scope: "rank 1", MinSeverity: "warn"},
		Assertion{Check: "finding_absent", Kind: "progress-starvation"},
	)
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid finding assertions rejected: %v", err)
	}
}
