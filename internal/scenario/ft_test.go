package scenario

import (
	"strings"
	"testing"

	"ovlp/internal/diagnose"
)

// TestValidateFTRejections: the crash/recovery declarations are
// validated before any rank spawns, with errors naming the mistake.
func TestValidateFTRejections(t *testing.T) {
	const wl = "workload:\n  kind: exchange\n  size: 1K\n  reps: 2\n"
	cases := []struct {
		name string
		yaml string
		want string
	}{
		{"crash-node-range", "name: x\nprocs: 3\n" + wl + "crashes:\n  - node: 5\n    at: 1ms", "outside [0, 3)"},
		{"crash-at-zero", "name: x\nprocs: 3\n" + wl + "crashes:\n  - node: 1\n    at: 0s", "positive at"},
		{"crash-twice", "name: x\nprocs: 3\n" + wl + "crashes:\n  - node: 1\n    at: 1ms\n  - node: 1\n    at: 2ms", "crashes twice"},
		{"all-crash", "name: x\nprocs: 2\n" + wl + "crashes:\n  - node: 0\n    at: 1ms\n  - node: 1\n    at: 2ms", "at least two must survive"},
		{"bad-mode", "name: x\nprocs: 3\n" + wl + "crashes:\n  - node: 1\n    at: 1ms\nrecovery:\n  mode: pray", "unknown recovery mode"},
		{"negative-every", "name: x\nprocs: 3\n" + wl + "recovery:\n  mode: checkpoint-restart\n  checkpoint_every: -1", "non-negative"},
		{"min-procs-high", "name: x\nprocs: 3\n" + wl + "recovery:\n  min_procs: 9", "exceeds procs"},
		{"coll-not-ft", "name: x\nprocs: 4\nworkload:\n  kind: coll\n  op: iallreduce\n  size: 1K\n  reps: 2\ncrashes:\n  - node: 1\n    at: 1ms", "checkpointable workload"},
		{"nas-ep-not-ft", "name: x\nprocs: 4\nworkload:\n  kind: nas\n  bench: EP\n  class: S\ncrashes:\n  - node: 1\n    at: 1ms", "not EP"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.name+".yaml", []byte(c.yaml))
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want substring %q", err, c.want)
			}
		})
	}
}

// TestFTMinProcs: smoke shrinking must keep every crashed node plus at
// least two survivors, or the shrunken run could not communicate.
func TestFTMinProcs(t *testing.T) {
	s := &Scenario{
		Procs:   16,
		Crashes: []CrashSpec{{Node: 6, At: 1}, {Node: 2, At: 2}},
	}
	if got := s.MinProcs(); got != 7 {
		t.Fatalf("MinProcs = %d, want 7 (crashed node 6 must exist)", got)
	}
	s.Crashes = []CrashSpec{{Node: 0, At: 1}, {Node: 1, At: 2}, {Node: 2, At: 3}}
	if got := s.MinProcs(); got != 5 {
		t.Fatalf("MinProcs = %d, want 5 (three dead + two survivors)", got)
	}
}

// TestFTSmokeRun: a crash scenario run in smoke mode recovers, carries
// the recovery line in its report and diagnoses the rank failure.
func TestFTSmokeRun(t *testing.T) {
	const yaml = `
name: ft-smoke
seed: 77
procs: 4
deadline: 5s
reliable:
  max_retries: 3
workload:
  kind: exchange
  size: 256K
  reps: 6
  compute: 100us
crashes:
  - node: 1
    at: 500us
assert:
  - check: bounds_valid
  - check: conservation
  - check: finding
    kind: rank-failure
    scope: rank 1
`
	s, err := Parse("ft-smoke.yaml", []byte(yaml))
	if err != nil {
		t.Fatal(err)
	}
	rr, err := Run(s, Opts{Smoke: true})
	if err != nil {
		t.Fatal(err)
	}
	if rr.FT == nil {
		t.Fatal("crash scenario ran without the fault-tolerant runner")
	}
	if !rr.FT.Completed {
		t.Errorf("smoke run did not complete: %+v", rr.FT)
	}
	if got := rr.FT.Failed; len(got) != 1 || got[0] != 1 {
		t.Errorf("Failed = %v, want [1]", got)
	}
	rep := string(rr.ReportBytes)
	for _, want := range []string{`"recovery"`, `"mode": "shrink-continue"`, `"completed": true`} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %s:\n%s", want, rep)
		}
	}
	if vs := Evaluate(rr); len(vs) != 0 {
		for _, v := range vs {
			t.Errorf("violation: %s", v)
		}
	}
	found := false
	for _, f := range rr.Findings.Findings {
		if f.Kind == diagnose.KindRankFailure {
			found = true
		}
	}
	if !found {
		t.Error("no rank-failure finding on a declared crash")
	}
}
