package scenario

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParse drives the YAML-subset loader (and the validation behind
// it) with arbitrary bytes: it must reject garbage with an error,
// never panic, and anything it accepts must survive a round trip
// through its own JSON encoding. Seeds are the real corpus files.
//
// Run long with: go test -fuzz=FuzzParse ./internal/scenario
func FuzzParse(f *testing.F) {
	paths, _ := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.yaml"))
	for _, p := range paths {
		if b, err := os.ReadFile(p); err == nil {
			f.Add(b)
		}
	}
	// Adversarial shapes the corpus files don't cover: deep nesting,
	// truncated documents, type confusion, huge scalars.
	for _, s := range []string{
		"",
		"name",
		"name: x\nprocs: not-a-number",
		"name: x\nprocs: 2\nworkload: 7",
		"assert:\n  - check:\n    - nested: [1, 2",
		"name: \"unterminated",
		"chaos:\n- at: 99999999999999999999s",
		"name: x\r\nprocs: 2\r\n",
		"workload:\n\tkind: exchange",
		"crashes:\n  - node: -1\n    at: 1ms",
	} {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse("fuzz.yaml", data)
		if err != nil {
			return
		}
		b, err := s.EncodeJSON()
		if err != nil {
			t.Fatalf("accepted scenario failed to encode: %v", err)
		}
		if _, err := Parse("fuzz.json", b); err != nil {
			t.Fatalf("round trip rejected: %v\nencoded:\n%s\noriginal:\n%s", err, b, data)
		}
	})
}
