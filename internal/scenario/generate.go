package scenario

import (
	"fmt"
	"math/rand"
	"time"
)

// Generate derives n stress scenarios from seed, deterministically:
// the same (seed, n) always yields the same scenarios, so a generated
// corpus entry can be regenerated bit-for-bit from its header. Each
// scenario cycles through one of four chaos archetypes — a cascading
// link-failure chain, a correlated rack outage, a bandwidth-
// degradation ramp with a DMA-stall storm, and a jitter-spike train —
// over randomized workloads, and carries the universal robustness
// assertions (bounds_valid, conservation, determinism, duration,
// error_absent): whatever the chaos, the instrumentation's bounds
// must stay sound and the run reproducible.
func Generate(seed int64, n int) []*Scenario {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*Scenario, 0, n)
	for i := 0; i < n; i++ {
		var s *Scenario
		switch i % 4 {
		case 0:
			s = genCascade(rng)
		case 1:
			s = genRackOutage(rng)
		case 2:
			s = genRampStorm(rng)
		default:
			s = genJitterTrain(rng)
		}
		s.Name = fmt.Sprintf("gen-%04x-%02d-%s", seed&0xffff, i, s.Name)
		s.Seed = rng.Int63n(1 << 32)
		s.Deadline = Dur(20 * time.Second)
		s.Assertions = append(s.Assertions,
			Assertion{Check: "bounds_valid"},
			Assertion{Check: "conservation"},
			Assertion{Check: "determinism"},
			Assertion{Check: "error_absent", Error: "any"},
			Assertion{Check: "duration", Max: s.Deadline},
		)
		if err := s.Validate(); err != nil {
			panic("scenario: generator produced invalid scenario: " + err.Error())
		}
		out = append(out, s)
	}
	return out
}

// genWorkload picks a survivable workload mix.
func genWorkload(rng *rand.Rand, procs int) Workload {
	switch rng.Intn(3) {
	case 0:
		return Workload{
			Kind:    "exchange",
			Size:    Size(8 << (10 + rng.Intn(5))), // 8K..128K
			Reps:    6 + rng.Intn(10),
			Compute: Dur(time.Duration(100+rng.Intn(400)) * time.Microsecond),
		}
	case 1:
		ops := []string{"ibcast", "iallreduce", "ialltoall"}
		return Workload{
			Kind:    "coll",
			Op:      ops[rng.Intn(len(ops))],
			Size:    Size(4 << (10 + rng.Intn(4))), // 4K..32K
			Reps:    4 + rng.Intn(6),
			Compute: Dur(time.Duration(150+rng.Intn(350)) * time.Microsecond),
			Polls:   1 + rng.Intn(3),
		}
	default:
		// Only benches whose grid constraints the machine satisfies.
		benches := []string{"LU", "MG", "FT", "IS"}
		w := Workload{Kind: "nas", Class: "S", Iters: 3 + rng.Intn(4)}
		for _, b := range []string{"CG", "BT", "SP"} {
			w.Bench = b
			if w.procsOK(procs) {
				benches = append(benches, b)
			}
		}
		w.Bench = benches[rng.Intn(len(benches))]
		return w
	}
}

// genCascade: a chain of link failures marching around the ring —
// link (i -> i+1) degrades hard at t_i, healing as the next one goes.
func genCascade(rng *rand.Rand) *Scenario {
	procs := 4 + rng.Intn(3) // 4..6
	s := &Scenario{Name: "cascade", Procs: procs, Workload: genWorkload(rng, procs)}
	step := time.Duration(300+rng.Intn(400)) * time.Microsecond
	for i := 0; i < procs; i++ {
		at := time.Duration(i) * step
		s.Chaos = append(s.Chaos, ChaosEvent{
			Label: fmt.Sprintf("cascade-%d", i),
			At:    Dur(at),
			Clear: Dur(at + 2*step),
			Drop:  0.15 + 0.2*rng.Float64(),
			Links: []string{fmt.Sprintf("%d->%d", i, (i+1)%procs)},
		})
	}
	return s
}

// genRackOutage: a correlated node group (the "rack") loses quality on
// every touching link for a window, then heals.
func genRackOutage(rng *rand.Rand) *Scenario {
	procs := 5 + rng.Intn(3) // 5..7
	s := &Scenario{Name: "rack", Procs: procs, Workload: genWorkload(rng, procs)}
	rack := []int{0, 1}
	if rng.Intn(2) == 1 {
		rack = []int{procs - 2, procs - 1}
	}
	at := time.Duration(200+rng.Intn(500)) * time.Microsecond
	s.Chaos = append(s.Chaos, ChaosEvent{
		Label:  "rack-outage",
		At:     Dur(at),
		Clear:  Dur(at + time.Duration(1+rng.Intn(2))*time.Millisecond),
		Drop:   0.2 + 0.15*rng.Float64(),
		Jitter: Dur(time.Duration(1+rng.Intn(4)) * time.Microsecond),
		Nodes:  rack,
	})
	return s
}

// genRampStorm: fabric-wide bandwidth degradation ramping in, plus a
// storm of short DMA stalls on random NICs.
func genRampStorm(rng *rand.Rand) *Scenario {
	procs := 4 + rng.Intn(2) // 4..5
	s := &Scenario{Name: "ramp", Procs: procs, Workload: genWorkload(rng, procs)}
	at := time.Duration(100+rng.Intn(300)) * time.Microsecond
	s.Chaos = append(s.Chaos, ChaosEvent{
		Label:     "bandwidth-ramp",
		At:        Dur(at),
		Ramp:      Dur(time.Duration(500+rng.Intn(1000)) * time.Microsecond),
		Clear:     Dur(at + 4*time.Millisecond),
		Bandwidth: 0.25 + 0.25*rng.Float64(),
	})
	storms := 2 + rng.Intn(3)
	for i := 0; i < storms; i++ {
		s.Stalls = append(s.Stalls, Stall{
			Node:  rng.Intn(procs),
			Start: Dur(at + time.Duration(i*200)*time.Microsecond),
			Dur:   Dur(time.Duration(20+rng.Intn(60)) * time.Microsecond),
		})
	}
	return s
}

// genJitterTrain: short, sharp jitter spikes arriving in a train,
// occasionally with packet duplication.
func genJitterTrain(rng *rand.Rand) *Scenario {
	procs := 4 + rng.Intn(3)
	s := &Scenario{Name: "jitter", Procs: procs, Workload: genWorkload(rng, procs)}
	spikes := 3 + rng.Intn(3)
	period := time.Duration(400+rng.Intn(400)) * time.Microsecond
	for i := 0; i < spikes; i++ {
		at := time.Duration(i) * period
		ev := ChaosEvent{
			Label:  fmt.Sprintf("spike-%d", i),
			At:     Dur(at),
			Clear:  Dur(at + period/3),
			Jitter: Dur(time.Duration(2+rng.Intn(6)) * time.Microsecond),
		}
		if rng.Intn(3) == 0 {
			ev.Dup = 0.1 + 0.1*rng.Float64()
		}
		s.Chaos = append(s.Chaos, ev)
	}
	return s
}
