package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Parse decodes one scenario from YAML-subset or JSON bytes (name is
// used in errors; its extension selects the syntax, defaulting to
// YAML). Unknown fields are rejected — a typo in an assertion must not
// silently weaken the corpus — and the scenario is validated.
func Parse(name string, data []byte) (*Scenario, error) {
	var jsonBytes []byte
	if strings.HasSuffix(name, ".json") {
		jsonBytes = data
	} else {
		tree, err := parseYAML(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		jsonBytes, err = json.Marshal(tree)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
	}
	dec := json.NewDecoder(bytes.NewReader(jsonBytes))
	dec.DisallowUnknownFields()
	s := &Scenario{}
	if err := dec.Decode(s); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return s, nil
}

// LoadFile reads and parses one scenario file (.yaml, .yml or .json).
func LoadFile(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(filepath.Base(path), data)
}

// LoadDir loads every scenario file directly inside dir, sorted by
// file name so corpus order is stable.
func LoadDir(dir string) ([]*Scenario, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		switch filepath.Ext(e.Name()) {
		case ".yaml", ".yml", ".json":
			paths = append(paths, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return nil, fmt.Errorf("scenario: no scenario files in %s", dir)
	}
	out := make([]*Scenario, 0, len(paths))
	seen := map[string]string{}
	for _, p := range paths {
		s, err := LoadFile(p)
		if err != nil {
			return nil, err
		}
		if prev, dup := seen[s.Name]; dup {
			return nil, fmt.Errorf("scenario: %s and %s both declare name %q", prev, p, s.Name)
		}
		seen[s.Name] = p
		out = append(out, s)
	}
	return out, nil
}

// EncodeJSON renders the scenario as indented JSON — the format the
// generator writes its corpus entries in.
func (s *Scenario) EncodeJSON() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
