package scenario

import (
	"fmt"
	"time"

	"ovlp/internal/calib"
	"ovlp/internal/fabric"
	"ovlp/internal/overlap"
)

// The bounds oracle re-derives the paper's three-case min/max overlap
// algorithm from each rank's raw instrumentation event stream and
// checks it two ways: the replayed totals must equal the monitor's
// incrementally folded report exactly, and for every transfer the
// fabric double-stamped, min ≤ true overlap ≤ max must hold within a
// tolerance reflecting the library's approximate view. Under a chaos
// schedule the tolerance additionally absorbs injected jitter and —
// for bandwidth-degraded windows — the stretch of the physical
// transfer beyond its calibrated time, since calibration describes
// the healthy network the instrumentation was characterized on.

type oracle struct {
	table *calib.Table

	lastStamp time.Duration
	inLib     bool
	callSeq   uint64
	cumUser   time.Duration
	cumLib    time.Duration

	open          map[uint64]oracleOpen
	results       []oracleResult
	userIntervals []interval
	lastExit      time.Duration

	sumMin, sumMax, sumData time.Duration
	count                   int
}

type oracleOpen struct {
	size    int64
	cumUser time.Duration
	cumLib  time.Duration
	callSeq uint64
}

type oracleResult struct {
	id       uint64
	size     int64
	minOv    time.Duration
	maxOv    time.Duration
	sameCall bool
}

type interval struct{ start, end time.Duration }

func (o *oracle) advance(stamp time.Duration) {
	span := stamp - o.lastStamp
	if o.inLib {
		o.cumLib += span
	} else {
		o.cumUser += span
	}
	o.lastStamp = stamp
}

func (o *oracle) apply(e overlap.Event) {
	o.advance(e.Stamp)
	switch e.Kind {
	case overlap.KindCallEnter:
		o.inLib = true
		o.callSeq++
		if e.Stamp > o.lastExit {
			o.userIntervals = append(o.userIntervals, interval{o.lastExit, e.Stamp})
		}
	case overlap.KindCallExit:
		o.inLib = false
		o.lastExit = e.Stamp
	case overlap.KindXferBegin:
		o.open[e.ID] = oracleOpen{size: e.Size, cumUser: o.cumUser, cumLib: o.cumLib, callSeq: o.callSeq}
	case overlap.KindXferEnd:
		rec, seen := o.open[e.ID]
		if !seen {
			o.record(oracleResult{id: e.ID, size: e.Size, minOv: 0, maxOv: o.table.XferTime(int(e.Size))})
			return
		}
		delete(o.open, e.ID)
		xt := o.table.XferTime(int(rec.size))
		if rec.callSeq == o.callSeq && o.inLib {
			o.record(oracleResult{id: e.ID, size: rec.size, sameCall: true})
			return
		}
		comp := o.cumUser - rec.cumUser
		noncomp := o.cumLib - rec.cumLib
		maxOv := xt
		if comp < maxOv {
			maxOv = comp
		}
		minOv := xt - noncomp
		if minOv < 0 {
			minOv = 0
		}
		if minOv > maxOv {
			minOv = maxOv
		}
		o.record(oracleResult{id: e.ID, size: rec.size, minOv: minOv, maxOv: maxOv})
	case overlap.KindEpochCut:
		// The monitor truncates every open transfer at an epoch cut as
		// single-stamped: zero min, full transfer-time max.
		for id, rec := range o.open {
			o.record(oracleResult{id: id, size: rec.size, minOv: 0, maxOv: o.table.XferTime(int(rec.size))})
			delete(o.open, id)
		}
	}
}

func (o *oracle) record(res oracleResult) {
	o.results = append(o.results, res)
	o.sumMin += res.minOv
	o.sumMax += res.maxOv
	o.sumData += o.table.XferTime(int(res.size))
	o.count++
}

func (o *oracle) finish(stamp time.Duration) {
	o.advance(stamp)
	if !o.inLib && stamp > o.lastExit {
		o.userIntervals = append(o.userIntervals, interval{o.lastExit, stamp})
	}
	for id, rec := range o.open {
		o.record(oracleResult{id: id, size: rec.size, minOv: 0, maxOv: o.table.XferTime(int(rec.size))})
		delete(o.open, id)
	}
}

// overlapWith returns how much of [start, end) falls inside the
// rank's user-computation intervals.
func (o *oracle) overlapWith(start, end time.Duration) time.Duration {
	var total time.Duration
	for _, iv := range o.userIntervals {
		s, e := start, end
		if iv.start > s {
			s = iv.start
		}
		if iv.end < e {
			e = iv.end
		}
		if e > s {
			total += e - s
		}
	}
	return total
}

// maxJitter returns the largest jitter any part of the plan can
// inject (the time-dependent part of the oracle tolerance).
func maxJitter(plan *fabric.FaultPlan) time.Duration {
	if plan == nil {
		return 0
	}
	m := plan.Default.JitterMax
	for _, lf := range plan.Links {
		if lf.JitterMax > m {
			m = lf.JitterMax
		}
	}
	for i := range plan.Schedule {
		ev := &plan.Schedule[i]
		if ev.Default != nil && ev.Default.JitterMax > m {
			m = ev.Default.JitterMax
		}
		if ev.NodeFaults.JitterMax > m {
			m = ev.NodeFaults.JitterMax
		}
		for _, lf := range ev.Links {
			if lf.JitterMax > m {
				m = lf.JitterMax
			}
		}
	}
	return m
}

// checkBounds replays rank's event stream and verifies both oracle
// properties against the monitor report and the ground-truth transfer
// log. It returns a violation description, or "".
func checkBounds(rank int, events []overlap.Event, rep *overlap.Report,
	truth map[uint64]fabric.Transfer, table *calib.Table,
	cost fabric.CostModel, plan *fabric.FaultPlan) string {

	if rep == nil {
		return fmt.Sprintf("rank %d: no instrumentation report to check bounds against", rank)
	}
	o := &oracle{table: table, open: map[uint64]oracleOpen{}}
	for _, e := range events {
		o.apply(e)
	}
	o.finish(rep.Duration)

	// (1) Internal consistency: the monitor's folded totals must match
	// an independent replay of its own event stream exactly.
	tot := rep.Total()
	if o.sumMin != tot.MinOverlapped || o.sumMax != tot.MaxOverlapped ||
		o.sumData != tot.DataTransferTime || o.count != tot.Count {
		return fmt.Sprintf("rank %d: replayed totals (n=%d min=%v max=%v data=%v) != report (n=%d min=%v max=%v data=%v)",
			rank, o.count, o.sumMin, o.sumMax, o.sumData,
			tot.Count, tot.MinOverlapped, tot.MaxOverlapped, tot.DataTransferTime)
	}

	// (2) Physical validity: bounds bracket the true overlap.
	eps := cost.LinkLatency + cost.DMAStartup + 2*time.Microsecond + maxJitter(plan)
	for _, r := range o.results {
		tr, ok := truth[r.id]
		if !ok {
			continue // library-internal id (e.g. receiver-side bulk view)
		}
		trueDur := (tr.End - tr.Start).Duration()
		trueOv := o.overlapWith(tr.Start.Duration(), tr.End.Duration())
		// 5% calibration slack plus, under bandwidth degradation, the
		// stretch of the wire interval beyond the calibrated estimate.
		fudge := eps + trueDur/20
		if stretch := trueDur - o.table.XferTime(int(r.size)); stretch > 0 {
			fudge += stretch
		}
		if r.sameCall && trueOv > fudge {
			return fmt.Sprintf("rank %d xfer %d (size %d): same-call transfer but true overlap %v > %v",
				rank, r.id, r.size, trueOv, fudge)
		}
		if r.minOv > trueOv+fudge {
			return fmt.Sprintf("rank %d xfer %d (size %d): min bound %v exceeds true overlap %v (+%v)",
				rank, r.id, r.size, r.minOv, trueOv, fudge)
		}
		if trueOv > r.maxOv+fudge {
			return fmt.Sprintf("rank %d xfer %d (size %d): true overlap %v exceeds max bound %v (+%v)",
				rank, r.id, r.size, trueOv, r.maxOv, fudge)
		}
	}
	return ""
}
