package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"ovlp/internal/overlap"
)

// ReportSchema versions the run-report JSON; bump it whenever a field
// changes meaning, so stale golden files fail loudly instead of
// drifting.
const ReportSchema = 1

// RunReport is the deterministic JSON artifact one engine run
// produces — the thing golden files pin and report_hash assertions
// cover. It contains only run observations, never assertion verdicts,
// so the same report is stable whether or not the scenario's
// assertions pass. All collections are slices in fixed order (no
// maps), all durations serialize as strings.
type RunReport struct {
	Schema   int    `json:"schema"`
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`
	Procs    int    `json:"procs"`
	Smoke    bool   `json:"smoke,omitempty"`

	Duration Dur    `json:"duration"`
	Error    string `json:"error,omitempty"`

	Faults struct {
		Dropped    int `json:"dropped"`
		Duplicated int `json:"duplicated"`
		Jittered   int `json:"jittered"`
		Stalled    int `json:"stalled"`
		Blackholed int `json:"blackholed"`
	} `json:"faults"`

	Total     OverlapSummary `json:"total"`
	Regions   []RegionLine   `json:"regions,omitempty"`
	RankLines []RankLine     `json:"ranks"`

	Blame *BlameLine `json:"blame,omitempty"`

	// Recovery is present only for fault-tolerant runs (the scenario
	// declared crashes or a recovery block), so failure-free goldens
	// are unaffected.
	Recovery *RecoveryLine `json:"recovery,omitempty"`

	TraceHash string `json:"trace_hash"`
}

// RecoveryLine summarizes the fault-tolerant runner's observations.
type RecoveryLine struct {
	Mode          string `json:"mode"`
	Completed     bool   `json:"completed"`
	Epochs        int    `json:"epochs"`
	Failed        []int  `json:"failed,omitempty"`
	Survivors     []int  `json:"survivors,omitempty"`
	Checkpoints   int    `json:"checkpoints,omitempty"`
	ReplayedSteps int    `json:"replayed_steps,omitempty"`
}

// OverlapSummary is the report's view of one overlap.Measures.
type OverlapSummary struct {
	Transfers int     `json:"transfers"`
	Data      Dur     `json:"data_transfer_time"`
	MinOv     Dur     `json:"min_overlapped"`
	MaxOv     Dur     `json:"max_overlapped"`
	MinPct    float64 `json:"min_pct"`
	MaxPct    float64 `json:"max_pct"`
}

// RegionLine is the job-wide aggregate for one monitored region.
type RegionLine struct {
	Name    string         `json:"name"`
	Summary OverlapSummary `json:"summary"`
}

// RankLine is one rank's row: its error (if any), library time,
// reliable-delivery counters and overlap totals.
type RankLine struct {
	Rank        int             `json:"rank"`
	Error       string          `json:"error,omitempty"`
	MPITime     Dur             `json:"mpi_time"`
	Retransmits int             `json:"retransmits"`
	Summary     *OverlapSummary `json:"summary,omitempty"`
}

// BlameLine carries the profiler's job-wide attribution totals in the
// fixed Columns order.
type BlameLine struct {
	Gap        Dur         `json:"gap"`
	Categories []BlameCell `json:"categories"`
}

// BlameCell is one blame category's total.
type BlameCell struct {
	Category string `json:"category"`
	Time     Dur    `json:"time"`
}

func summarize(m overlap.Measures) OverlapSummary {
	return OverlapSummary{
		Transfers: m.Count,
		Data:      Dur(m.DataTransferTime),
		MinOv:     Dur(m.MinOverlapped),
		MaxOv:     Dur(m.MaxOverlapped),
		MinPct:    round2(m.MinPercent()),
		MaxPct:    round2(m.MaxPercent()),
	}
}

// round2 rounds to two decimals so the JSON never carries float noise.
func round2(f float64) float64 {
	return float64(int64(f*100+0.5)) / 100
}

// buildReport folds a run result into its deterministic report.
func buildReport(rr *RunResult) *RunReport {
	rep := &RunReport{
		Schema:   ReportSchema,
		Scenario: rr.Scenario.Name,
		Seed:     rr.Scenario.Seed,
		Procs:    rr.Procs,
		Smoke:    rr.Opts.Smoke,
		Duration: Dur(rr.Res.Duration),
	}
	if rr.Err != nil {
		rep.Error = rr.Err.Error()
	}
	fs := rr.Res.FaultStats
	rep.Faults.Dropped = fs.Dropped
	rep.Faults.Duplicated = fs.Duplicated
	rep.Faults.Jittered = fs.Jittered
	rep.Faults.Stalled = fs.Stalled
	rep.Faults.Blackholed = fs.Blackholed

	agg := overlap.Aggregate(rr.Res.Reports)
	rep.Total = summarize(agg.Total())
	for _, reg := range agg.Regions {
		if reg.Name == "" || reg.Total.Count == 0 {
			continue
		}
		rep.Regions = append(rep.Regions, RegionLine{Name: reg.Name, Summary: summarize(reg.Total)})
	}

	for rank := 0; rank < rr.Procs; rank++ {
		line := RankLine{Rank: rank}
		if rank < len(rr.Res.MPITimes) {
			line.MPITime = Dur(rr.Res.MPITimes[rank])
		}
		if rank < len(rr.Res.RelStats) {
			line.Retransmits = rr.Res.RelStats[rank].Retransmits
		}
		if rank < len(rr.Res.RankErrors) && rr.Res.RankErrors[rank] != nil {
			line.Error = rr.Res.RankErrors[rank].Error()
		}
		if rank < len(rr.Res.Reports) && rr.Res.Reports[rank] != nil {
			s := summarize(rr.Res.Reports[rank].Total())
			line.Summary = &s
		}
		rep.RankLines = append(rep.RankLines, line)
	}

	if ft := rr.FT; ft != nil {
		rep.Recovery = &RecoveryLine{
			Mode:          rr.Scenario.recoveryMode().String(),
			Completed:     ft.Completed,
			Epochs:        ft.Epochs,
			Failed:        ft.Failed,
			Survivors:     ft.Survivors,
			Checkpoints:   ft.Checkpoints,
			ReplayedSteps: ft.ReplayedSteps,
		}
	}

	if rr.Profile != nil {
		bl := &BlameLine{Gap: Dur(rr.Profile.Totals.Gap)}
		names, vals := rr.Profile.Totals.Blame.Columns()
		for i, n := range names {
			bl.Categories = append(bl.Categories, BlameCell{Category: n, Time: Dur(vals[i])})
		}
		rep.Blame = bl
	}
	rep.TraceHash = rr.TraceHash
	return rep
}

func (r *RunReport) encode() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteText renders a human-readable summary of the run and its
// assertion verdicts — what cmd/scenario prints per scenario.
func WriteText(w io.Writer, rr *RunResult, violations []Violation) {
	rep := buildReport(rr)
	status := "PASS"
	if len(violations) > 0 {
		status = "FAIL"
	}
	fmt.Fprintf(w, "scenario %-24s %s  procs %d  seed %d  t=%v\n",
		rep.Scenario, status, rep.Procs, rep.Seed, time.Duration(rep.Duration))
	fmt.Fprintf(w, "  overlap: min %.1f%% max %.1f%% over %d transfers (%v data)\n",
		rep.Total.MinPct, rep.Total.MaxPct, rep.Total.Transfers, time.Duration(rep.Total.Data))
	if fs := rep.Faults; fs.Dropped+fs.Duplicated+fs.Jittered+fs.Stalled+fs.Blackholed > 0 {
		fmt.Fprintf(w, "  faults:  dropped %d dup %d jitter %d stalled %d blackholed %d\n",
			fs.Dropped, fs.Duplicated, fs.Jittered, fs.Stalled, fs.Blackholed)
	}
	if rep.Error != "" {
		fmt.Fprintf(w, "  error:   %s\n", rep.Error)
	}
	fmt.Fprintf(w, "  hashes:  trace %s  report %s\n", short(rr.TraceHash), short(rr.ReportHash))
	for _, sk := range rr.Skips {
		fmt.Fprintf(w, "  SKIP %s: %s\n", sk.Check, sk.Reason)
	}
	for _, v := range violations {
		fmt.Fprintf(w, "  VIOLATION %s: expected %s, observed %s\n", v.Check, v.Expected, v.Observed)
	}
}

func short(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}
