package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"time"

	"ovlp/internal/cluster"
	"ovlp/internal/diagnose"
	"ovlp/internal/fabric"
	"ovlp/internal/mpi"
	"ovlp/internal/overlap"
	"ovlp/internal/profile"
	"ovlp/internal/timeres"
	"ovlp/internal/trace"
	"ovlp/internal/vtime"
)

// Smoke-mode caps: CI runs the whole corpus quickly by shrinking the
// machine and the iteration counts while keeping every scenario's
// structure — workload mix, chaos schedule, assertion set — intact.
const (
	smokeProcs = 4
	smokeReps  = 5
	smokeIters = 2
)

// DefaultDeadline bounds scenarios that do not declare their own.
const DefaultDeadline = 10 * time.Second

// Opts parameterizes one engine run.
type Opts struct {
	// Smoke shrinks the run for CI: procs capped at 4 (but never below
	// the scenario's structural minimum), reps at 5, iterations at 2.
	// Golden-hash assertions are skipped, since the bytes legitimately
	// differ from the full-size run's.
	Smoke bool
	// TimeRes attaches the time-resolved analyzer even when no
	// time_resolved assertion asks for it, so RunResult.TimeRes carries
	// a snapshot (cmd/scenario -timeresolved sets it).
	TimeRes bool
	// TimeResWindow overrides the analyzer's window length when the
	// scenario's assertions don't declare one (0 = package default).
	TimeResWindow time.Duration
	// Sink, when non-nil, is attached to the run's tracer and observes
	// every trace record as it is emitted (cmd/ovltop's live console).
	// It never alters the run's bytes, and determinism reruns strip it.
	Sink trace.Sink
	// Findings runs the diagnosis engine even when no finding assertion
	// asks for it, so RunResult.Findings carries a report
	// (cmd/scenario -findings sets it). Implies the time-resolved
	// analyzer.
	Findings bool
	// Backend selects the execution substrate (see
	// cluster.Config.Backend). On the real backend the hash and
	// determinism assertions are skipped with a named reason — wall
	// clocks are not replayable — and chaos scenarios are rejected,
	// since fault injection needs the virtual fabric.
	Backend cluster.Backend
}

// RunResult is everything one engine run produces: the raw cluster
// observations, the captured per-rank instrumentation streams, the
// offline profile, and the deterministic artifacts (Chrome trace
// bytes, run-report JSON) with their hashes.
type RunResult struct {
	Scenario *Scenario
	Opts     Opts
	// Procs is the machine size actually used (== Scenario.Procs except
	// under smoke clamping).
	Procs int

	Res cluster.Result
	// FT carries the fault-tolerant runner's observations when the
	// scenario declared crashes or a recovery block (nil otherwise).
	FT *cluster.FTResult
	// Err is the run's aggregate error: nil, a *cluster.RunErrors, or a
	// bare simulation error (deadlock). Planned crash-stop failures are
	// already filtered out by the FT runner; an expected-error assertion
	// can make a non-nil Err a passing outcome.
	Err error
	// Events holds each rank's raw instrumentation event stream (the
	// oracle's input).
	Events [][]overlap.Event
	// Profile is the offline blame analysis (nil when it could not be
	// produced, e.g. a run wedged before emitting any stream).
	Profile *profile.Profile
	// TimeRes is the windowed efficiency snapshot, present when the
	// scenario has time_resolved assertions or Opts.TimeRes was set
	// (nil when the stream could not be replayed). It is deliberately
	// NOT part of the run report, so golden files are unaffected.
	TimeRes *timeres.Snapshot
	// Findings is the diagnosis engine's report, present when the
	// scenario has finding assertions or Opts.Findings was set. Like
	// TimeRes it stays out of the run report: its own JSON is the
	// golden artifact (scenarios/golden/<name>.findings.json).
	Findings *diagnose.Report
	// Skips lists the assertions Evaluate deliberately did not check
	// for this run, each with a named reason (smoke shrinkage,
	// real-clock nondeterminism). Skips stay out of the run report so
	// golden files are unaffected; they exist so a skipped check is
	// visible instead of silently passing.
	Skips []Skip

	TraceBytes  []byte
	TraceHash   string
	ReportBytes []byte
	ReportHash  string
}

// Run executes the scenario once. The run is a pure function of
// (scenario, opts): identical inputs produce byte-identical
// TraceBytes and ReportBytes. Errors returned here are engine-level
// (invalid scenario); the workload's own failures land in
// RunResult.Err where assertions can inspect them.
func Run(s *Scenario, opts Opts) (*RunResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	procs := s.Procs
	if opts.Smoke && procs > smokeProcs {
		procs = smokeProcs
		if mp := s.MinProcs(); procs < mp {
			procs = mp
		}
		// Never shrink onto a machine the workload cannot use (NPB grid
		// constraints); s.Procs itself validated, so this terminates.
		for procs < s.Procs && !s.Workload.procsOK(procs) {
			procs++
		}
	}
	mpiCfg, err := s.mpiConfig()
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	plan, err := s.FaultPlan()
	if err != nil {
		return nil, err
	}
	if opts.Backend == cluster.BackendReal && (plan != nil || s.wantsFT()) {
		return nil, fmt.Errorf("scenario %s: chaos and crash injection need the virtual backend; drop -backend real", s.Name)
	}

	events := make([][]overlap.Event, procs)
	mpiCfg.Instrument = &mpi.InstrumentConfig{
		TraceSinkFor: func(rank int) func(overlap.Event) {
			return func(e overlap.Event) { events[rank] = append(events[rank], e) }
		},
	}
	deadline := s.Deadline.D()
	if deadline <= 0 {
		deadline = DefaultDeadline
	}
	tracer := trace.New(trace.Options{})
	var tres *timeres.Analyzer
	if opts.TimeRes || opts.Findings || s.wantsTimeRes() {
		tres = timeres.New(timeres.Options{Window: s.timeResWindow(opts.TimeResWindow)})
		tracer.AddSink(tres)
	}
	tracer.AddSink(opts.Sink) // nil-safe no-op when unset
	cfg := cluster.Config{
		Procs:       procs,
		Backend:     opts.Backend,
		MPI:         mpiCfg,
		RecordTruth: true,
		Faults:      plan,
		Deadline:    deadline,
		Trace:       tracer,
	}

	var res cluster.Result
	var runErr error
	var ftres *cluster.FTResult
	if s.wantsFT() {
		cfg.Crashes = s.crashPlan()
		wl, werr := s.Workload.checkpointable(opts.Smoke)
		if werr != nil {
			return nil, fmt.Errorf("scenario %s: %w", s.Name, werr)
		}
		ft, ferr := cluster.RunFT(cfg, s.ftOptions(), wl)
		res, runErr, ftres = ft.Result, ferr, &ft
	} else {
		res, runErr = cluster.RunE(cfg, s.Workload.program(opts.Smoke))
	}

	rr := &RunResult{
		Scenario: s,
		Opts:     opts,
		Procs:    procs,
		Res:      res,
		FT:       ftres,
		Err:      runErr,
		Events:   events,
	}

	var tb bytes.Buffer
	if err := tracer.WriteChrome(&tb); err != nil {
		return nil, fmt.Errorf("scenario %s: trace export: %w", s.Name, err)
	}
	rr.TraceBytes = tb.Bytes()
	rr.TraceHash = hashBytes(rr.TraceBytes)

	// The offline profile is best-effort: a run that wedged at t=0 may
	// not have enough stream to analyze, and assertions that need the
	// profile report its absence as their own violation.
	if p, err := profile.Analyze(profile.FromTracer(tracer, res.Calib, res.Reports)); err == nil {
		rr.Profile = p
	}

	// Same best-effort contract for the time-resolved view: a stream
	// the replay rejects leaves TimeRes nil and the time_resolved
	// assertions report its absence as their own violation.
	if tres != nil {
		tres.SetTable(res.Calib)
		tres.Finalize(res.Duration)
		if tres.Err() == nil {
			rr.TimeRes = tres.Snapshot()
		}
	}

	if opts.Findings || s.wantsFindings() {
		rr.Findings = diagnoseRun(rr)
	}

	rr.ReportBytes, err = buildReport(rr).encode()
	if err != nil {
		return nil, fmt.Errorf("scenario %s: report encode: %w", s.Name, err)
	}
	rr.ReportHash = hashBytes(rr.ReportBytes)
	return rr, nil
}

// crashPlan compiles the declared crash list onto the fabric's plan.
func (s *Scenario) crashPlan() *fabric.CrashPlan {
	if len(s.Crashes) == 0 {
		return nil
	}
	p := &fabric.CrashPlan{}
	for _, cr := range s.Crashes {
		p.Crashes = append(p.Crashes, fabric.Crash{Node: fabric.NodeID(cr.Node), At: vtime.Time(cr.At)})
	}
	return p
}

// ftOptions maps the recovery block onto cluster.FTOptions.
func (s *Scenario) ftOptions() cluster.FTOptions {
	opt := cluster.FTOptions{Mode: s.recoveryMode()}
	if r := s.Recovery; r != nil {
		opt.CheckpointEvery = r.CheckpointEvery
		opt.MinProcs = r.MinProcs
		opt.Heartbeat = r.Heartbeat.D()
	}
	return opt
}

// recoveryMode returns the declared mode (validated earlier), with
// shrink-continue the default.
func (s *Scenario) recoveryMode() cluster.RecoveryMode {
	if s.Recovery != nil {
		if m, err := parseRecoveryMode(s.Recovery.Mode); err == nil {
			return m
		}
	}
	return cluster.ShrinkContinue
}

// diagnoseRun feeds the run's artifacts to the diagnosis engine: the
// blame profile, the windowed snapshot, per-rank retransmit counters
// and structured errors, the workload's progress mode, and the
// declared chaos schedule as labeled fault intervals so findings can
// cite their cause.
func diagnoseRun(rr *RunResult) *diagnose.Report {
	s := rr.Scenario
	in := diagnose.Input{
		Profile:      rr.Profile,
		TimeRes:      rr.TimeRes,
		Duration:     rr.Res.Duration,
		Procs:        rr.Procs,
		ProgressMode: s.Workload.Progress,
	}
	for _, rs := range rr.Res.RelStats {
		in.Retransmits = append(in.Retransmits, rs.Retransmits+rs.Reposts)
	}
	for _, err := range rr.Res.RankErrors {
		msg := ""
		if err != nil {
			msg = err.Error()
		}
		in.Errors = append(in.Errors, msg)
	}
	for i := range s.Chaos {
		ev := &s.Chaos[i]
		label := ev.Label
		if label == "" {
			label = fmt.Sprintf("chaos[%d]", i)
		}
		in.Faults = append(in.Faults, diagnose.Interval{
			Label: label, Start: ev.At.D(), End: ev.Clear.D(),
		})
	}
	for i, st := range s.Stalls {
		iv := diagnose.Interval{
			Label: fmt.Sprintf("dma-stall[%d] node %d", i, st.Node),
			Start: st.Start.D(),
		}
		if !st.Forever {
			iv.End = st.Start.D() + st.Dur.D()
		}
		in.Faults = append(in.Faults, iv)
	}
	for _, cr := range s.Crashes {
		in.Crashes = append(in.Crashes, diagnose.Crash{Rank: cr.Node, At: cr.At.D()})
	}
	if ft := rr.FT; ft != nil {
		in.Recovery = &diagnose.Recovery{
			Mode:          s.recoveryMode().String(),
			Epochs:        ft.Epochs,
			Failed:        ft.Failed,
			Survivors:     len(ft.Survivors),
			Checkpoints:   ft.Checkpoints,
			ReplayedSteps: ft.ReplayedSteps,
			Completed:     ft.Completed,
		}
	}
	return diagnose.Analyze(in)
}

// realClock reports whether the run executed on the wall clock, which
// voids the engine's byte-exact determinism contract.
func (rr *RunResult) realClock() bool { return rr.Opts.Backend == cluster.BackendReal }

func hashBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// truthByID indexes the ground-truth transfer log for the oracle.
func (rr *RunResult) truthByID() map[uint64]fabric.Transfer {
	m := make(map[uint64]fabric.Transfer, len(rr.Res.Transfers))
	for _, tr := range rr.Res.Transfers {
		m[tr.XferID] = tr
	}
	return m
}
