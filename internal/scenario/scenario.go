// Package scenario implements the declarative chaos-scenario engine:
// a scenario file (YAML subset or JSON) names a topology and workload
// mix, a timed chaos schedule — cascading link failures, correlated
// rack outages, bandwidth-degradation ramps, DMA-stall storms, jitter
// spikes — and a set of machine-checkable assertions over the run's
// overlap bounds, blame attribution, structured errors and
// determinism hashes. The engine compiles the schedule onto
// fabric.FaultPlan, runs the workload on a simulated cluster, and
// evaluates every assertion, so a committed corpus of scenarios
// becomes a reproducible robustness regression suite: same seed, same
// bytes, same verdicts.
package scenario

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"ovlp/internal/cluster"
	"ovlp/internal/coll"
	"ovlp/internal/diagnose"
	"ovlp/internal/fabric"
	"ovlp/internal/mpi"
	"ovlp/internal/nas"
	"ovlp/internal/progress"
	"ovlp/internal/timeres"
	"ovlp/internal/vtime"
)

// Dur is a time.Duration that unmarshals from either a duration
// string ("250us", "2ms") or a bare number of nanoseconds, and
// marshals back to the string form scenario files use.
type Dur time.Duration

func (d Dur) D() time.Duration { return time.Duration(d) }

func (d Dur) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

func (d *Dur) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("bad duration %q: %w", s, err)
		}
		*d = Dur(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("duration must be a string like \"2ms\" or nanoseconds, got %s", b)
	}
	*d = Dur(n)
	return nil
}

// Size is a byte count that unmarshals from a bare integer or a
// string with a K/M binary suffix ("64K", "1M").
type Size int64

func (s Size) N() int { return int(s) }

func (s Size) MarshalJSON() ([]byte, error) {
	switch {
	case s >= 1<<20 && s%(1<<20) == 0:
		return json.Marshal(fmt.Sprintf("%dM", s>>20))
	case s >= 1<<10 && s%(1<<10) == 0:
		return json.Marshal(fmt.Sprintf("%dK", s>>10))
	}
	return json.Marshal(int64(s))
}

func (s *Size) UnmarshalJSON(b []byte) error {
	var str string
	if err := json.Unmarshal(b, &str); err == nil {
		str = strings.ToUpper(strings.TrimSpace(str))
		mult := int64(1)
		switch {
		case strings.HasSuffix(str, "M"):
			mult, str = 1<<20, strings.TrimSuffix(str, "M")
		case strings.HasSuffix(str, "K"):
			mult, str = 1<<10, strings.TrimSuffix(str, "K")
		}
		n, err := strconv.ParseInt(str, 10, 64)
		if err != nil {
			return fmt.Errorf("bad size %q", str)
		}
		*s = Size(n * mult)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("size must be an integer or a string like \"64K\", got %s", b)
	}
	*s = Size(n)
	return nil
}

// Scenario is the typed form of one scenario file.
type Scenario struct {
	// Name identifies the scenario in reports and golden files.
	Name string `json:"name"`
	// Seed seeds both the fault-injection PRNG and any randomized
	// workload choices; the whole run is a pure function of it.
	Seed int64 `json:"seed"`
	// Procs is the machine size (one rank per node).
	Procs int `json:"procs"`
	// Deadline bounds virtual time (default 10s): a wedged run comes
	// back as a structured deadlock error instead of hanging.
	Deadline Dur `json:"deadline,omitempty"`
	// Protocol selects the rendezvous flavour: "", "pipelined"
	// (Open MPI-like) or "direct" (MVAPICH2-like).
	Protocol string `json:"protocol,omitempty"`
	// Reliable overrides the retransmission parameters; nil uses the
	// fabric defaults whenever the chaos schedule is active.
	Reliable *ReliableSpec `json:"reliable,omitempty"`
	// Workload is the program the ranks execute.
	Workload Workload `json:"workload"`
	// Chaos is the timed fault schedule (may be empty: a calm run).
	Chaos []ChaosEvent `json:"chaos,omitempty"`
	// Stalls are DMA-stall windows (the NIC-sided fault axis).
	Stalls []Stall `json:"stalls,omitempty"`
	// Crashes are crash-stop rank failures. Declaring any (or a
	// Recovery block) runs the workload under the fault-tolerant runner
	// (cluster.RunFT): survivors detect, agree and recover, and the
	// planned crashes' own rank errors are expected rather than
	// violations.
	Crashes []CrashSpec `json:"crashes,omitempty"`
	// Recovery tunes the recovery policy; nil with Crashes declared
	// means shrink-continue with defaults.
	Recovery *RecoverySpec `json:"recovery,omitempty"`
	// Assertions are checked after the run; any violation makes the
	// scenario fail.
	Assertions []Assertion `json:"assert,omitempty"`
}

// CrashSpec is one declared crash-stop failure: the node's NIC goes
// permanently silent at the given virtual time.
type CrashSpec struct {
	Node int `json:"node"`
	At   Dur `json:"at"`
}

// RecoverySpec tunes cluster.FTOptions for a crash scenario.
type RecoverySpec struct {
	// Mode: "shrink-continue" (default) or "checkpoint-restart".
	Mode string `json:"mode,omitempty"`
	// CheckpointEvery is the step interval between checkpoints in
	// checkpoint-restart mode (0 = every step).
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// MinProcs makes the run fail when an agreement leaves fewer
	// active ranks (0 = continue down to one).
	MinProcs int `json:"min_procs,omitempty"`
	// Heartbeat overrides the failure detector's ping period.
	Heartbeat Dur `json:"heartbeat,omitempty"`
}

// ReliableSpec mirrors fabric.ReliableParams for scenario files.
type ReliableSpec struct {
	Timeout Dur `json:"timeout,omitempty"`
	// MaxRetries: 0 uses the default budget; any negative value means
	// the first timeout is fatal (mapped to fabric.NoRetries — an
	// unlimited budget would only ever end at the deadline, so
	// scenarios cannot express it).
	MaxRetries int     `json:"max_retries,omitempty"`
	Backoff    float64 `json:"backoff,omitempty"`
}

// Workload declares the program every rank runs.
type Workload struct {
	// Kind: "exchange" (ring/pair nonblocking exchange with inserted
	// computation, monitored region "exchange"), "nas" (an NPB
	// benchmark), or "coll" (a compute-overlapped nonblocking
	// collective, as cmd/collstudy runs).
	Kind string `json:"kind"`

	// exchange parameters.
	Size    Size `json:"size,omitempty"`
	Reps    int  `json:"reps,omitempty"`
	Compute Dur  `json:"compute,omitempty"`

	// nas parameters.
	Bench string `json:"bench,omitempty"`
	Class string `json:"class,omitempty"`
	Iters int    `json:"iters,omitempty"`

	// coll parameters (Size, Reps and Compute above also apply).
	Op       string `json:"op,omitempty"`
	Algo     string `json:"algo,omitempty"`
	Progress string `json:"progress,omitempty"`
	Chunk    Size   `json:"chunk,omitempty"`
	Polls    int    `json:"polls,omitempty"`
}

// ChaosEvent is one timed entry of the chaos schedule. It compiles to
// a fabric.FaultEvent: active from At (cleared at Clear, ramping over
// Ramp), scoped to the whole fabric, to a correlated node group
// (Nodes — a rack or switch), or to explicit directed links.
type ChaosEvent struct {
	Label string `json:"label,omitempty"`
	At    Dur    `json:"at"`
	Clear Dur    `json:"clear,omitempty"`
	Ramp  Dur    `json:"ramp,omitempty"`

	// The fault mix while active.
	Drop      float64 `json:"drop,omitempty"`
	Dup       float64 `json:"dup,omitempty"`
	Jitter    Dur     `json:"jitter,omitempty"`
	DropEvery int     `json:"drop_every,omitempty"`
	// Bandwidth is the capacity factor in (0,1]; e.g. 0.25 quarters
	// link bandwidth (0 means "unchanged").
	Bandwidth float64 `json:"bandwidth,omitempty"`

	// Scope: Nodes is a correlated group (every link touching one of
	// them), Links lists directed "src->dst" pairs; both empty means
	// every link.
	Nodes []int    `json:"nodes,omitempty"`
	Links []string `json:"links,omitempty"`
}

// Stall is one DMA-stall window on a node's NIC.
type Stall struct {
	Node  int `json:"node"`
	Start Dur `json:"start"`
	Dur   Dur `json:"dur,omitempty"`
	// Forever blackholes the NIC from Start onward.
	Forever bool `json:"forever,omitempty"`
}

// Assertion is one machine-checkable expectation. Check selects the
// kind; the other fields parameterize it (see DESIGN.md Sec. 4.9 for
// the taxonomy).
type Assertion struct {
	// Check: "overlap", "blame_share", "error", "error_absent",
	// "bounds_valid", "conservation", "determinism", "trace_hash",
	// "report_hash", "duration", "time_resolved", "finding",
	// "finding_absent".
	Check string `json:"check"`

	// overlap: bounds (in percent of data transfer time) the region's
	// measured min/max overlap must fall inside, with tolerance.
	Region string   `json:"region,omitempty"`
	Rank   *int     `json:"rank,omitempty"`
	MinPct *float64 `json:"min_pct,omitempty"`
	MaxPct *float64 `json:"max_pct,omitempty"`
	TolPct float64  `json:"tol_pct,omitempty"`

	// blame_share: the named category's share of the profiler's total
	// attributed gap, in [MinShare, MaxShare] percent.
	Category string   `json:"category,omitempty"`
	MinShare *float64 `json:"min_share,omitempty"`
	MaxShare *float64 `json:"max_share,omitempty"`

	// error / error_absent: a structured error ("timeout",
	// "peer_unreachable", "deadlock", or "any") expected (or proven
	// absent) — on the given rank when Rank is set, anywhere otherwise.
	Error string `json:"error,omitempty"`

	// duration: the run's virtual time must not exceed Max.
	Max Dur `json:"max,omitempty"`

	// trace_hash / report_hash: expected sha256 hex of the Chrome
	// trace bytes / report JSON.
	Hash string `json:"hash,omitempty"`

	// time_resolved: the minimum of Metric (a timeres efficiency:
	// par_eff, load_bal, comm_eff, xfer_eff, ser_eff) over the windows
	// — or the phases of kind Phase — overlapping [From, To) must stay
	// >= MinEff and/or <= MaxEff, within TolEff. To == 0 means the run
	// end. Window sets the analyzer's window length; every
	// time_resolved assertion in a scenario must declare the same one
	// (zero means the default). Skipped under -smoke, like the hash
	// checks: a shrunk run's windows are legitimately different.
	Metric string   `json:"metric,omitempty"`
	Window Dur      `json:"window,omitempty"`
	From   Dur      `json:"from,omitempty"`
	To     Dur      `json:"to,omitempty"`
	Phase  string   `json:"phase,omitempty"`
	MinEff *float64 `json:"min_eff,omitempty"`
	MaxEff *float64 `json:"max_eff,omitempty"`
	TolEff float64  `json:"tol_eff,omitempty"`

	// finding / finding_absent: the diagnosis engine
	// (internal/diagnose) must emit (or must not emit) a finding of
	// Kind, at severity >= MinSeverity ("" means any), whose scope
	// string contains Scope when set ("rank 2", "site exchange/Isend").
	// Unlike the hash checks these run under -smoke too: the diagnosed
	// condition is structural, not byte-exact.
	Kind        string `json:"kind,omitempty"`
	Scope       string `json:"scope,omitempty"`
	MinSeverity string `json:"min_severity,omitempty"`
}

// knownChecks (see checkdoc.go) is derived from the checkDocs table,
// the taxonomy's single source of truth.

var errorNames = map[string]bool{"timeout": true, "peer_unreachable": true, "deadlock": true, "any": true}

var blameCategories = map[string]bool{
	"fault-retransmit": true, "late-init": true, "early-wait": true,
	"protocol": true, "progress": true, "truncated": true,
	"detect": true, "agree": true, "rollback": true, "recompute": true,
	"unknown": true,
}

// Validate checks the scenario's internal consistency — everything
// that can be rejected before a simulation is built.
func (s *Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: name is required")
	}
	if strings.ContainsAny(s.Name, "/ \t") {
		return fmt.Errorf("scenario %s: name must be a file-name-safe token", s.Name)
	}
	if s.Procs < 2 {
		return fmt.Errorf("scenario %s: procs must be at least 2, got %d", s.Name, s.Procs)
	}
	if s.Deadline < 0 {
		return fmt.Errorf("scenario %s: negative deadline", s.Name)
	}
	if _, err := s.protocol(); err != nil {
		return err
	}
	if err := s.Workload.validate(s.Name, s.Procs); err != nil {
		return err
	}
	// FT first: its errors name the crash declarations precisely, and
	// once it passes the crash-derived part of MinProcs fits s.Procs,
	// so a MinProcs excess can only come from the chaos schedule.
	if err := s.validateFT(); err != nil {
		return err
	}
	if n := s.MinProcs(); s.Procs < n {
		return fmt.Errorf("scenario %s: chaos schedule names node %d but procs is %d", s.Name, n-1, s.Procs)
	}
	var trWindow Dur
	trSeen := false
	for i := range s.Assertions {
		if err := s.Assertions[i].validate(s.Name, i, s.Procs); err != nil {
			return err
		}
		if a := &s.Assertions[i]; a.Check == "time_resolved" {
			if trSeen && a.Window != trWindow {
				return fmt.Errorf("scenario %s: time_resolved assertions disagree on window (%v vs %v); one analyzer serves them all",
					s.Name, trWindow.D(), a.Window.D())
			}
			trWindow, trSeen = a.Window, true
		}
	}
	// The compiled plan gets the fabric's own validation too.
	if _, err := s.FaultPlan(); err != nil {
		return err
	}
	return nil
}

// wantsFT reports whether the scenario runs under the fault-tolerant
// runner: any declared crash or an explicit recovery block.
func (s *Scenario) wantsFT() bool {
	return len(s.Crashes) > 0 || s.Recovery != nil
}

// validateFT checks the crash/recovery declarations: crashed nodes
// must exist, kill times be positive, the recovery mode be known, and
// the workload have a fault-tolerant (Checkpointable) form.
func (s *Scenario) validateFT() error {
	if !s.wantsFT() {
		return nil
	}
	seen := map[int]bool{}
	for i, cr := range s.Crashes {
		if cr.Node < 0 || cr.Node >= s.Procs {
			return fmt.Errorf("scenario %s: crash %d names node %d outside [0, %d)", s.Name, i, cr.Node, s.Procs)
		}
		if cr.At <= 0 {
			return fmt.Errorf("scenario %s: crash %d needs a positive at", s.Name, i)
		}
		if seen[cr.Node] {
			return fmt.Errorf("scenario %s: node %d crashes twice", s.Name, cr.Node)
		}
		seen[cr.Node] = true
	}
	if len(s.Crashes) > s.Procs-2 {
		return fmt.Errorf("scenario %s: %d of %d ranks crash; at least two must survive to keep communicating",
			s.Name, len(s.Crashes), s.Procs)
	}
	if r := s.Recovery; r != nil {
		if _, err := parseRecoveryMode(r.Mode); err != nil {
			return fmt.Errorf("scenario %s: %w", s.Name, err)
		}
		if r.CheckpointEvery < 0 || r.MinProcs < 0 || r.Heartbeat < 0 {
			return fmt.Errorf("scenario %s: recovery parameters must be non-negative", s.Name)
		}
		if r.MinProcs > s.Procs {
			return fmt.Errorf("scenario %s: recovery min_procs %d exceeds procs %d", s.Name, r.MinProcs, s.Procs)
		}
	}
	if _, err := s.Workload.checkpointable(false); err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	return nil
}

func parseRecoveryMode(mode string) (cluster.RecoveryMode, error) {
	return cluster.ParseRecoveryMode(mode)
}

func (w *Workload) validate(name string, procs int) error {
	switch w.Kind {
	case "exchange":
		if w.Size <= 0 {
			return fmt.Errorf("scenario %s: exchange workload needs a positive size", name)
		}
		if w.Reps <= 0 {
			return fmt.Errorf("scenario %s: exchange workload needs positive reps", name)
		}
	case "nas":
		bench := strings.ToUpper(w.Bench)
		ok := false
		for _, n := range nas.Names() {
			if n == bench {
				ok = true
			}
		}
		if !ok {
			return fmt.Errorf("scenario %s: unknown nas bench %q (want one of %s)",
				name, w.Bench, strings.Join(nas.Names(), ", "))
		}
		switch strings.ToUpper(w.Class) {
		case "", "S", "W", "A", "B":
		default:
			return fmt.Errorf("scenario %s: unknown nas class %q", name, w.Class)
		}
		if !w.procsOK(procs) {
			return fmt.Errorf("scenario %s: nas %s cannot run on %d processes (BT/SP need a square count, CG a power of two)",
				name, bench, procs)
		}
	case "coll":
		switch w.Op {
		case "ibcast", "ireduce", "iallreduce", "ialltoall", "ibarrier":
		default:
			return fmt.Errorf("scenario %s: unknown collective %q", name, w.Op)
		}
		if w.Op != "ibarrier" && w.Size <= 0 {
			return fmt.Errorf("scenario %s: collective %s needs a positive size", name, w.Op)
		}
		if w.Reps <= 0 {
			return fmt.Errorf("scenario %s: coll workload needs positive reps", name)
		}
		if w.Algo != "" {
			if _, err := coll.ParseAlgo(w.Algo); err != nil {
				return fmt.Errorf("scenario %s: %w", name, err)
			}
		}
		if w.Progress != "" {
			if _, err := progress.ParseMode(w.Progress); err != nil {
				return fmt.Errorf("scenario %s: %w", name, err)
			}
		}
	default:
		return fmt.Errorf("scenario %s: unknown workload kind %q (want exchange, nas or coll)", name, w.Kind)
	}
	return nil
}

func (a *Assertion) validate(name string, i, procs int) error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("scenario %s: assertion %d (%s): %s", name, i, a.Check, fmt.Sprintf(format, args...))
	}
	if a.Rank != nil && (*a.Rank < 0 || *a.Rank >= procs) {
		return bad("rank %d outside [0, %d)", *a.Rank, procs)
	}
	switch a.Check {
	case "overlap":
		if a.MinPct == nil && a.MaxPct == nil {
			return bad("needs min_pct and/or max_pct")
		}
	case "blame_share":
		if !blameCategories[a.Category] {
			cats := make([]string, 0, len(blameCategories))
			for c := range blameCategories {
				cats = append(cats, c)
			}
			sort.Strings(cats)
			return bad("unknown blame category %q (want one of %s)", a.Category, strings.Join(cats, ", "))
		}
		if a.MinShare == nil && a.MaxShare == nil {
			return bad("needs min_share and/or max_share")
		}
	case "error", "error_absent":
		if a.Check == "error_absent" && a.Error == "" {
			a.Error = "any"
		}
		if !errorNames[a.Error] {
			return bad("unknown error %q (want timeout, peer_unreachable, deadlock or any)", a.Error)
		}
	case "bounds_valid", "conservation", "determinism":
		// No parameters.
	case "trace_hash", "report_hash":
		if len(a.Hash) != 64 {
			return bad("needs a 64-hex-digit sha256 hash")
		}
	case "duration":
		if a.Max <= 0 {
			return bad("needs a positive max")
		}
	case "time_resolved":
		if a.Metric == "" {
			a.Metric = "par_eff"
		}
		known := false
		for _, m := range timeres.MetricNames() {
			if m == a.Metric {
				known = true
			}
		}
		if !known {
			return bad("unknown metric %q (want one of %s)", a.Metric, strings.Join(timeres.MetricNames(), ", "))
		}
		switch a.Phase {
		case "", "compute", "exchange":
		default:
			return bad("unknown phase kind %q (want compute or exchange)", a.Phase)
		}
		if a.MinEff == nil && a.MaxEff == nil {
			return bad("needs min_eff and/or max_eff")
		}
		for _, p := range []*float64{a.MinEff, a.MaxEff} {
			if p != nil && (*p < 0 || *p > 1) {
				return bad("efficiency bound %.3f outside [0, 1]", *p)
			}
		}
		if a.Window < 0 || a.From < 0 || a.To < 0 || a.TolEff < 0 {
			return bad("window, from, to and tol_eff must be non-negative")
		}
		if a.To != 0 && a.To <= a.From {
			return bad("empty scope [%v, %v)", a.From.D(), a.To.D())
		}
	case "finding", "finding_absent":
		known := false
		for _, k := range diagnose.AnalyzeKinds() {
			if k == a.Kind {
				known = true
			}
		}
		if !known {
			return bad("unknown finding kind %q (want one of %s)",
				a.Kind, strings.Join(diagnose.AnalyzeKinds(), ", "))
		}
		switch a.MinSeverity {
		case "", diagnose.SevInfo, diagnose.SevWarn, diagnose.SevCritical:
		default:
			return bad("unknown min_severity %q (want info, warn or critical)", a.MinSeverity)
		}
	default:
		return bad("unknown check (want one of %s)", strings.Join(knownChecks, ", "))
	}
	return nil
}

// wantsTimeRes reports whether any assertion needs the time-resolved
// analyzer attached to the run. Finding assertions count: the
// diagnosis engine reads the windowed snapshot.
func (s *Scenario) wantsTimeRes() bool {
	return s.wantsFindings() || s.hasCheck("time_resolved")
}

// wantsFindings reports whether any assertion needs the diagnosis
// engine's findings.
func (s *Scenario) wantsFindings() bool {
	return s.hasCheck("finding") || s.hasCheck("finding_absent")
}

func (s *Scenario) hasCheck(kind string) bool {
	for i := range s.Assertions {
		if s.Assertions[i].Check == kind {
			return true
		}
	}
	return false
}

// timeResWindow picks the analyzer window: the assertions' declared
// window wins (they were validated to agree), then the engine option,
// then the package default.
func (s *Scenario) timeResWindow(override time.Duration) time.Duration {
	for i := range s.Assertions {
		a := &s.Assertions[i]
		if a.Check == "time_resolved" && a.Window > 0 {
			return a.Window.D()
		}
	}
	return override
}

// MinProcs returns the smallest machine this scenario can run on: the
// declared workload floor and every node named by the chaos schedule
// or stall list (smoke mode must not shrink below it).
func (s *Scenario) MinProcs() int {
	min := 2
	touch := func(n int) {
		if n+1 > min {
			min = n + 1
		}
	}
	for i := range s.Chaos {
		ev := &s.Chaos[i]
		for _, n := range ev.Nodes {
			touch(n)
		}
		for _, l := range ev.Links {
			if src, dst, err := parseLink(l); err == nil {
				touch(int(src))
				touch(int(dst))
			}
		}
	}
	for _, st := range s.Stalls {
		touch(st.Node)
	}
	for _, cr := range s.Crashes {
		touch(cr.Node)
	}
	if len(s.Crashes) > 0 && len(s.Crashes)+2 > min {
		// At least two survivors, so the shrunken run still communicates.
		min = len(s.Crashes) + 2
	}
	return min
}

// procsOK reports whether the workload can run on a procs-rank
// machine — the NPB kernels constrain their process grids.
func (w *Workload) procsOK(procs int) bool {
	if w.Kind != "nas" {
		return true
	}
	switch strings.ToUpper(w.Bench) {
	case "BT", "SP":
		for q := 1; q*q <= procs; q++ {
			if q*q == procs {
				return true
			}
		}
		return false
	case "CG":
		return procs&(procs-1) == 0
	}
	return true
}

func (s *Scenario) protocol() (mpi.LongProtocol, error) {
	switch strings.ToLower(s.Protocol) {
	case "", "pipelined":
		return mpi.PipelinedRDMA, nil
	case "direct":
		return mpi.DirectRDMARead, nil
	}
	return 0, fmt.Errorf("scenario %s: unknown protocol %q (want pipelined or direct)", s.Name, s.Protocol)
}

// parseLink parses "src->dst" (or "src-dst") into a directed link.
func parseLink(s string) (src, dst fabric.NodeID, err error) {
	a, b, ok := strings.Cut(s, "->")
	if !ok {
		a, b, ok = strings.Cut(s, "-")
	}
	if ok {
		si, err1 := strconv.Atoi(strings.TrimSpace(a))
		di, err2 := strconv.Atoi(strings.TrimSpace(b))
		if err1 == nil && err2 == nil && si >= 0 && di >= 0 {
			return fabric.NodeID(si), fabric.NodeID(di), nil
		}
	}
	return 0, 0, fmt.Errorf(`bad link %q (want "src->dst", e.g. "0->1")`, s)
}

// FaultPlan compiles the chaos schedule and stall list into the
// fabric's fault plan (nil when the scenario declares no faults). The
// compiled plan is validated.
func (s *Scenario) FaultPlan() (*fabric.FaultPlan, error) {
	plan := &fabric.FaultPlan{Seed: s.Seed}
	for i := range s.Chaos {
		ev := &s.Chaos[i]
		lf := fabric.LinkFaults{
			DropRate:        ev.Drop,
			DupRate:         ev.Dup,
			JitterMax:       ev.Jitter.D(),
			DropEvery:       ev.DropEvery,
			BandwidthFactor: ev.Bandwidth,
		}
		fe := fabric.FaultEvent{
			Label: ev.Label,
			At:    vtime.Time(ev.At),
			Clear: vtime.Time(ev.Clear),
			Ramp:  ev.Ramp.D(),
		}
		switch {
		case len(ev.Links) > 0:
			if len(ev.Nodes) > 0 {
				return nil, fmt.Errorf("scenario %s: chaos event %d scopes both nodes and links", s.Name, i)
			}
			fe.Links = map[fabric.Link]fabric.LinkFaults{}
			for _, l := range ev.Links {
				src, dst, err := parseLink(l)
				if err != nil {
					return nil, fmt.Errorf("scenario %s: chaos event %d: %w", s.Name, i, err)
				}
				fe.Links[fabric.Link{Src: src, Dst: dst}] = lf
			}
		case len(ev.Nodes) > 0:
			for _, n := range ev.Nodes {
				fe.Nodes = append(fe.Nodes, fabric.NodeID(n))
			}
			fe.NodeFaults = lf
		default:
			c := lf
			fe.Default = &c
		}
		plan.Schedule = append(plan.Schedule, fe)
	}
	for i, st := range s.Stalls {
		w := fabric.StallWindow{Node: fabric.NodeID(st.Node), Start: vtime.Time(st.Start)}
		switch {
		case st.Forever:
			w.End = fabric.Forever
		case st.Dur > 0:
			w.End = w.Start + vtime.Time(st.Dur)
		default:
			return nil, fmt.Errorf("scenario %s: stall %d needs a positive dur or forever: true", s.Name, i)
		}
		plan.Stalls = append(plan.Stalls, w)
	}
	if !plan.Active() {
		return nil, nil
	}
	if err := plan.Validate(); err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	return plan, nil
}
