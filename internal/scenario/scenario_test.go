package scenario

import (
	"strings"
	"testing"
	"time"

	"ovlp/internal/fabric"
)

const sampleYAML = `
name: sample
seed: 7
procs: 4
deadline: 2s
workload:
  kind: exchange
  size: 64K
  reps: 8
  compute: 200us
chaos:
  - label: outage
    at: 1ms
    clear: 3ms
    drop: 0.5
    nodes: [0, 1]
  - label: ramp
    at: 500us
    ramp: 1ms
    bandwidth: 0.25
stalls:
  - node: 2
    start: 1ms
    dur: 100us
assert:
  - check: bounds_valid
  - check: overlap
    region: exchange
    min_pct: 10
    tol_pct: 5
  - check: error_absent
`

func TestParseSampleYAML(t *testing.T) {
	s, err := Parse("sample.yaml", []byte(sampleYAML))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "sample" || s.Seed != 7 || s.Procs != 4 {
		t.Fatalf("header = %+v", s)
	}
	if s.Deadline.D() != 2*time.Second {
		t.Fatalf("deadline = %v", s.Deadline.D())
	}
	if s.Workload.Size.N() != 64<<10 || s.Workload.Compute.D() != 200*time.Microsecond {
		t.Fatalf("workload = %+v", s.Workload)
	}
	if len(s.Chaos) != 2 || len(s.Stalls) != 1 || len(s.Assertions) != 3 {
		t.Fatalf("sections = %d chaos, %d stalls, %d asserts", len(s.Chaos), len(s.Stalls), len(s.Assertions))
	}
	if s.Assertions[2].Error != "any" {
		t.Fatalf("error_absent did not default to any: %+v", s.Assertions[2])
	}

	plan, err := s.FaultPlan()
	if err != nil {
		t.Fatal(err)
	}
	if plan == nil || len(plan.Schedule) != 2 || len(plan.Stalls) != 1 {
		t.Fatalf("plan = %+v", plan)
	}
	ev := plan.Schedule[0]
	if len(ev.Nodes) != 2 || ev.NodeFaults.DropRate != 0.5 {
		t.Fatalf("outage event = %+v", ev)
	}
	ramp := plan.Schedule[1]
	if ramp.Default == nil || ramp.Default.BandwidthFactor != 0.25 || ramp.Ramp != time.Millisecond {
		t.Fatalf("ramp event = %+v", ramp)
	}
	if plan.Stalls[0].Node != 2 || plan.Stalls[0].End-plan.Stalls[0].Start != 100*1000 {
		t.Fatalf("stall = %+v", plan.Stalls[0])
	}
}

func TestParseJSONRoundTrip(t *testing.T) {
	s, err := Parse("sample.yaml", []byte(sampleYAML))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Parse("sample.json", b)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, b)
	}
	b2, err := s2.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Fatalf("round trip not stable:\n%s\nvs\n%s", b, b2)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		yaml string
		want string
	}{
		{"unknown-field", "name: x\nprocs: 2\nworkload:\n  kind: exchange\n  size: 1K\n  reps: 1\nbogus: 1", "bogus"},
		{"no-name", "procs: 2\nworkload:\n  kind: exchange\n  size: 1K\n  reps: 1", "name is required"},
		{"few-procs", "name: x\nprocs: 1\nworkload:\n  kind: exchange\n  size: 1K\n  reps: 1", "at least 2"},
		{"bad-kind", "name: x\nprocs: 2\nworkload:\n  kind: mystery", "unknown workload kind"},
		{"bad-bench", "name: x\nprocs: 2\nworkload:\n  kind: nas\n  bench: ZZ", "unknown nas bench"},
		{"bad-check", "name: x\nprocs: 2\nworkload:\n  kind: exchange\n  size: 1K\n  reps: 1\nassert:\n  - check: vibes", "unknown check"},
		{"bad-hash", "name: x\nprocs: 2\nworkload:\n  kind: exchange\n  size: 1K\n  reps: 1\nassert:\n  - check: trace_hash\n    hash: abc", "64-hex-digit"},
		{"chaos-node-range", "name: x\nprocs: 2\nworkload:\n  kind: exchange\n  size: 1K\n  reps: 1\nchaos:\n  - at: 0s\n    drop: 0.1\n    nodes: [5]", "names node 5"},
		{"nodes-and-links", "name: x\nprocs: 2\nworkload:\n  kind: exchange\n  size: 1K\n  reps: 1\nchaos:\n  - at: 0s\n    drop: 0.1\n    nodes: [1]\n    links: [0->1]", "both nodes and links"},
		{"assert-rank-range", "name: x\nprocs: 2\nworkload:\n  kind: exchange\n  size: 1K\n  reps: 1\nassert:\n  - check: overlap\n    min_pct: 1\n    rank: 9", "outside"},
		{"stall-no-dur", "name: x\nprocs: 2\nworkload:\n  kind: exchange\n  size: 1K\n  reps: 1\nstalls:\n  - node: 0\n    start: 1ms", "positive dur"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.name+".yaml", []byte(c.yaml))
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want substring %q", err, c.want)
			}
		})
	}
}

func TestMinProcsCoversChaosScope(t *testing.T) {
	s := &Scenario{
		Procs:  8,
		Chaos:  []ChaosEvent{{Links: []string{"5->6"}}},
		Stalls: []Stall{{Node: 3}},
	}
	if got := s.MinProcs(); got != 7 {
		t.Fatalf("MinProcs = %d, want 7", got)
	}
}

func TestFaultFlagSugarEquivalence(t *testing.T) {
	// The faultflag sugar and a one-event scenario schedule must compile
	// to equivalent plans (shared effective() semantics).
	s := &Scenario{
		Name: "sugar", Seed: 3, Procs: 2,
		Workload: Workload{Kind: "exchange", Size: 1 << 10, Reps: 1},
		Chaos:    []ChaosEvent{{Drop: 0.1, Jitter: Dur(2 * time.Microsecond)}},
	}
	plan, err := s.FaultPlan()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Schedule) != 1 {
		t.Fatalf("schedule = %+v", plan.Schedule)
	}
	fe := plan.Schedule[0]
	want := fabric.LinkFaults{DropRate: 0.1, JitterMax: 2 * time.Microsecond}
	if fe.Default == nil || *fe.Default != want || fe.At != 0 || fe.Clear != 0 {
		t.Fatalf("event = %+v", fe)
	}
}
