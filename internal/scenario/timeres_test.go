package scenario

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ovlp/internal/trace"
)

// timeResScenario is the calm scenario plus time_resolved assertions.
func timeResScenario(asserts ...Assertion) *Scenario {
	s := calmScenario()
	s.Name = "timeres"
	s.Assertions = asserts
	return s
}

func TestTimeResolvedAssertionEvaluates(t *testing.T) {
	// Efficiencies are by construction in [0, 1], so min_eff 0 always
	// passes and min_eff 1 (tol 0) can only pass on a perfect run —
	// the calm exchange has idle startup windows, so it must fail.
	s := timeResScenario(
		Assertion{Check: "time_resolved", Metric: "par_eff", MinEff: fptr(0)},
		Assertion{Check: "time_resolved", Metric: "xfer_eff", MinEff: fptr(0)},
	)
	rr, err := Run(s, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	if rr.TimeRes == nil {
		t.Fatal("run with time_resolved assertions has no TimeRes snapshot")
	}
	if vs := Evaluate(rr); len(vs) != 0 {
		t.Fatalf("trivially-true assertions violated: %v", vs)
	}

	s = timeResScenario(
		Assertion{Check: "time_resolved", Metric: "par_eff", MinEff: fptr(1)},
	)
	rr, err = Run(s, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	vs := Evaluate(rr)
	if len(vs) != 1 || vs[0].Check != "time_resolved" {
		t.Fatalf("impossible min_eff 1 not violated: %v", vs)
	}

	// An empty scope proves nothing and must be its own violation.
	s = timeResScenario(
		Assertion{Check: "time_resolved", Metric: "par_eff",
			From: Dur(time.Hour), MinEff: fptr(0)},
	)
	rr, err = Run(s, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	vs = Evaluate(rr)
	if len(vs) != 1 || vs[0].Check != "time_resolved" {
		t.Fatalf("empty scope not violated: %v", vs)
	}

	// Smoke runs skip the check entirely, like the hash assertions.
	smoke, err := Run(s, Opts{Smoke: true})
	if err != nil {
		t.Fatal(err)
	}
	if vs := Evaluate(smoke); len(vs) != 0 {
		t.Fatalf("smoke run must skip time_resolved, got %v", vs)
	}
}

func TestTimeResolvedValidation(t *testing.T) {
	cases := []struct {
		name    string
		asserts []Assertion
	}{
		{"unknown-metric", []Assertion{
			{Check: "time_resolved", Metric: "speedup", MinEff: fptr(0)}}},
		{"no-bounds", []Assertion{
			{Check: "time_resolved", Metric: "par_eff"}}},
		{"bad-phase", []Assertion{
			{Check: "time_resolved", Metric: "par_eff", Phase: "setup", MinEff: fptr(0)}}},
		{"bound-above-one", []Assertion{
			{Check: "time_resolved", Metric: "par_eff", MinEff: fptr(1.5)}}},
		{"empty-scope", []Assertion{
			{Check: "time_resolved", Metric: "par_eff", From: Dur(time.Millisecond),
				To: Dur(time.Millisecond), MinEff: fptr(0)}}},
		{"disagreeing-windows", []Assertion{
			{Check: "time_resolved", Metric: "par_eff", Window: Dur(time.Millisecond), MinEff: fptr(0)},
			{Check: "time_resolved", Metric: "par_eff", Window: Dur(2 * time.Millisecond), MinEff: fptr(0)}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := timeResScenario(c.asserts...)
			if err := s.Validate(); err == nil {
				t.Errorf("%s accepted", c.name)
			}
		})
	}

	// The default metric is par_eff, filled in by validation.
	s := timeResScenario(Assertion{Check: "time_resolved", MinEff: fptr(0)})
	if err := s.Validate(); err != nil {
		t.Fatalf("metricless assertion rejected: %v", err)
	}
	if s.Assertions[0].Metric != "par_eff" {
		t.Fatalf("default metric = %q", s.Assertions[0].Metric)
	}
}

// countSink counts trace records delivered to an Opts.Sink.
type countSink struct{ n int }

func (c *countSink) TraceRec(tk *trace.Track, r trace.Rec) { c.n++ }

// TestOptsSinkObservesRun: a live sink passed through Opts sees the
// run's records without changing its artifacts.
func TestOptsSinkObservesRun(t *testing.T) {
	s := calmScenario()
	bare, err := Run(s, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	sink := &countSink{}
	tapped, err := Run(s, Opts{Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	if sink.n == 0 {
		t.Fatal("sink saw no records")
	}
	if tapped.TraceHash != bare.TraceHash || tapped.ReportHash != bare.ReportHash {
		t.Fatal("attaching a sink changed the run's artifacts")
	}
}

// TestTimeResolvedCSVGolden byte-compares the pinned seed's windowed
// CSV — the live analyzer's full output for scenario phase-collapse —
// against the committed golden. Regenerate with
//
//	go run ./cmd/scenario -golden scenarios/golden -write-golden \
//	    -timeresolved scenarios/golden scenarios/09-phase-collapse.yaml
func TestTimeResolvedCSVGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size scenario run skipped in -short mode")
	}
	s, err := LoadFile(filepath.Join(corpusDir, "09-phase-collapse.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	rr, err := Run(s, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	if rr.TimeRes == nil {
		t.Fatal("phase-collapse run produced no time-resolved snapshot")
	}
	var buf bytes.Buffer
	if err := rr.TimeRes.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile(filepath.Join(corpusDir, "golden", s.Name+".timeres.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), golden) {
		t.Errorf("time-resolved CSV drifted from golden (%d vs %d bytes); regenerate if intentional",
			buf.Len(), len(golden))
	}
}
