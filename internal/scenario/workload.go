package scenario

import (
	"fmt"
	"strings"
	"time"

	"ovlp/internal/cluster"
	"ovlp/internal/coll"
	"ovlp/internal/fabric"
	"ovlp/internal/micro"
	"ovlp/internal/mpi"
	"ovlp/internal/nas"
	"ovlp/internal/progress"
)

// RegionExchange labels the monitored section around each exchange
// iteration, so overlap assertions can scope to it.
const RegionExchange = "exchange"

// program returns the per-rank main for the workload, already scaled
// for smoke mode (reduced reps/iterations; the mix is unchanged).
func (w *Workload) program(smoke bool) func(r *mpi.Rank) {
	reps := w.Reps
	iters := w.Iters
	if smoke {
		if reps > smokeReps {
			reps = smokeReps
		}
		if iters == 0 || iters > smokeIters {
			iters = smokeIters
		}
	}
	switch w.Kind {
	case "exchange":
		size, compute := w.Size.N(), w.Compute.D()
		return func(r *mpi.Rank) {
			// Ring exchange: Isend to the right neighbour, Irecv from
			// the left, compute while both are in flight. With two
			// ranks this degenerates to the paper's pairwise
			// microbenchmark shape.
			right := (r.ID() + 1) % r.Size()
			left := (r.ID() + r.Size() - 1) % r.Size()
			for i := 0; i < reps; i++ {
				r.PushRegion(RegionExchange)
				sq := r.Isend(right, 0, size)
				rq := r.Irecv(left, 0)
				r.Compute(compute)
				r.Waitall(sq, rq)
				r.PopRegion()
			}
		}
	case "nas":
		bench := strings.ToUpper(w.Bench)
		class := nas.ClassS
		if w.Class != "" {
			class = nas.Class(strings.ToUpper(w.Class)[0])
		}
		return func(r *mpi.Rank) {
			nas.Run(bench, r, nas.Params{Class: class, MaxIters: iters})
		}
	case "coll":
		op, size, compute, polls := w.Op, w.Size.N(), w.Compute.D(), w.Polls
		return func(r *mpi.Rank) {
			for i := 0; i < reps; i++ {
				cr := startColl(r, op, size)
				slice := compute / time.Duration(polls+1)
				for k := 0; k <= polls; k++ {
					r.Compute(slice)
					if k < polls {
						r.TestColl(cr)
					}
				}
				r.WaitColl(cr)
			}
		}
	}
	panic("scenario: unvalidated workload kind " + w.Kind)
}

// checkpointable returns the workload's fault-tolerant (stepwise,
// shrink-tolerant) form for crash scenarios, scaled for smoke mode.
// Only workloads with a recoverable structure have one: the ring
// exchange micro and the NPB CG/FT/MG kernels.
func (w *Workload) checkpointable(smoke bool) (cluster.Checkpointable, error) {
	reps, iters := w.Reps, w.Iters
	if smoke {
		if reps > smokeReps {
			reps = smokeReps
		}
		if iters == 0 || iters > smokeIters {
			iters = smokeIters
		}
	}
	switch w.Kind {
	case "exchange":
		return &micro.ExchangeWorkload{
			MsgSize:   w.Size.N(),
			Compute:   w.Compute.D(),
			StepCount: reps,
		}, nil
	case "nas":
		class := nas.ClassS
		if w.Class != "" {
			class = nas.Class(strings.ToUpper(w.Class)[0])
		}
		wl, ok := nas.CheckpointableKernel(strings.ToLower(w.Bench), nas.Params{Class: class, MaxIters: iters})
		if !ok {
			return nil, fmt.Errorf("crash scenarios support nas cg, ft and mg, not %s", strings.ToUpper(w.Bench))
		}
		return wl, nil
	}
	return nil, fmt.Errorf("crash scenarios need a checkpointable workload (exchange, or nas cg/ft/mg), not %q", w.Kind)
}

func startColl(r *mpi.Rank, op string, size int) *mpi.CollRequest {
	switch op {
	case "ibcast":
		return r.Ibcast(0, size)
	case "ireduce":
		return r.Ireduce(0, size)
	case "iallreduce":
		return r.Iallreduce(size)
	case "ialltoall":
		return r.Ialltoall(size)
	case "ibarrier":
		return r.Ibarrier()
	}
	panic("scenario: unvalidated collective " + op)
}

// mpiConfig fills the library configuration the workload asks for.
func (s *Scenario) mpiConfig() (mpi.Config, error) {
	proto, err := s.protocol()
	if err != nil {
		return mpi.Config{}, err
	}
	cfg := mpi.Config{Protocol: proto}
	w := &s.Workload
	if w.Kind == "coll" {
		if w.Algo != "" {
			if cfg.CollAlgo, err = coll.ParseAlgo(w.Algo); err != nil {
				return mpi.Config{}, err
			}
		}
		cfg.CollChunk = w.Chunk.N()
		if w.Progress != "" {
			mode, err := progress.ParseMode(w.Progress)
			if err != nil {
				return mpi.Config{}, err
			}
			cfg.Progress = progress.Config{Mode: mode}
		}
	}
	if s.Reliable != nil {
		retries := s.Reliable.MaxRetries
		if retries < 0 {
			// Scenario semantics: negative disables retransmission.
			retries = fabric.NoRetries
		}
		cfg.Reliable = &fabric.ReliableParams{
			Timeout:    s.Reliable.Timeout.D(),
			MaxRetries: retries,
			Backoff:    s.Reliable.Backoff,
		}
	}
	return cfg, nil
}
