package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// This file implements the YAML subset scenario files are written in.
// The repo deliberately has no third-party dependencies, so instead of
// a full YAML implementation the loader parses a small, predictable
// dialect into the generic any/map/slice shape encoding/json produces,
// and the typed Scenario is then decoded from that via JSON (see
// load.go). The subset covers what scenario files need:
//
//   - "#" comments (full-line or trailing, outside quotes)
//   - block mappings  key: value  with nesting by indentation (spaces)
//   - block sequences "- item", including sequences of mappings
//   - flow collections [a, b] and {k: v}, nestable
//   - scalars: null, true/false, integers, floats, and strings
//     (quoted or bare; bare strings like 2ms or 64K stay strings)
//
// Anchors, aliases, multi-document streams, multi-line strings and
// tabs are rejected with positioned errors.

type yamlLine struct {
	num    int // 1-based source line
	indent int
	text   string // content, comment stripped, trailing space trimmed
}

// parseYAML parses src into nested map[string]any / []any / scalars.
func parseYAML(src []byte) (any, error) {
	lines, err := splitYAMLLines(string(src))
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, nil
	}
	p := &yamlParser{lines: lines}
	v, err := p.block(lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		l := p.lines[p.pos]
		return nil, fmt.Errorf("scenario: yaml line %d: unexpected content %q (bad indentation?)", l.num, l.text)
	}
	return v, nil
}

func splitYAMLLines(src string) ([]yamlLine, error) {
	var out []yamlLine
	for i, raw := range strings.Split(src, "\n") {
		num := i + 1
		if strings.Contains(raw, "\t") {
			return nil, fmt.Errorf("scenario: yaml line %d: tabs are not allowed, indent with spaces", num)
		}
		text := stripComment(raw)
		trimmed := strings.TrimSpace(text)
		if trimmed == "" {
			continue
		}
		if trimmed == "---" || strings.HasPrefix(trimmed, "%") {
			if trimmed == "---" && len(out) == 0 {
				continue // a leading document marker is harmless
			}
			return nil, fmt.Errorf("scenario: yaml line %d: multi-document streams are not supported", num)
		}
		indent := len(text) - len(strings.TrimLeft(text, " "))
		out = append(out, yamlLine{num: num, indent: indent, text: strings.TrimSpace(text)})
	}
	return out, nil
}

// stripComment removes a trailing "#" comment, honouring quotes.
func stripComment(s string) string {
	var quote byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '"' || c == '\'':
			quote = c
		case c == '#':
			// YAML only treats # as a comment at start or after space.
			if i == 0 || s[i-1] == ' ' {
				return s[:i]
			}
		}
	}
	return s
}

type yamlParser struct {
	lines []yamlLine
	pos   int
}

// block parses the mapping or sequence whose first line sits at the
// current position with the given indent.
func (p *yamlParser) block(indent int) (any, error) {
	l := p.lines[p.pos]
	if strings.HasPrefix(l.text, "- ") || l.text == "-" {
		return p.sequence(indent)
	}
	return p.mapping(indent)
}

func (p *yamlParser) sequence(indent int) (any, error) {
	var out []any
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent != indent || (!strings.HasPrefix(l.text, "- ") && l.text != "-") {
			break
		}
		p.pos++
		rest := strings.TrimSpace(strings.TrimPrefix(l.text, "-"))
		switch {
		case rest == "":
			// Item is the nested block on the following lines.
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				out = append(out, nil)
				continue
			}
			v, err := p.block(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		case isMappingStart(rest):
			// "- key: ..." opens an inline mapping whose further keys
			// are indented past the dash.
			v, err := p.inlineItemMapping(l, rest, indent)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		default:
			v, err := parseFlowValue(rest, l.num)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
	}
	return out, nil
}

// inlineItemMapping handles a sequence item of the form "- key: value"
// with continuation keys indented deeper than the dash.
func (p *yamlParser) inlineItemMapping(l yamlLine, rest string, indent int) (any, error) {
	m := map[string]any{}
	key, val, err := splitKey(rest, l.num)
	if err != nil {
		return nil, err
	}
	if err := p.mappingValue(m, key, val, l, indent+2); err != nil {
		return nil, err
	}
	// Continuation keys: deeper than the dash, aligned with each other.
	if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
		cont := p.lines[p.pos].indent
		for p.pos < len(p.lines) && p.lines[p.pos].indent == cont {
			cl := p.lines[p.pos]
			if strings.HasPrefix(cl.text, "- ") {
				break
			}
			p.pos++
			k, v, err := splitKey(cl.text, cl.num)
			if err != nil {
				return nil, err
			}
			if _, dup := m[k]; dup {
				return nil, fmt.Errorf("scenario: yaml line %d: duplicate key %q", cl.num, k)
			}
			if err := p.mappingValue(m, k, v, cl, cont); err != nil {
				return nil, err
			}
		}
	}
	return m, nil
}

func (p *yamlParser) mapping(indent int) (any, error) {
	m := map[string]any{}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent != indent {
			if l.indent > indent {
				return nil, fmt.Errorf("scenario: yaml line %d: unexpected indentation", l.num)
			}
			break
		}
		if strings.HasPrefix(l.text, "- ") || l.text == "-" {
			return nil, fmt.Errorf("scenario: yaml line %d: sequence item inside a mapping", l.num)
		}
		p.pos++
		key, val, err := splitKey(l.text, l.num)
		if err != nil {
			return nil, err
		}
		if _, dup := m[key]; dup {
			return nil, fmt.Errorf("scenario: yaml line %d: duplicate key %q", l.num, key)
		}
		if err := p.mappingValue(m, key, val, l, indent); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// mappingValue stores key's value in m: an inline scalar/flow value,
// or the nested block on the following lines when val is empty.
func (p *yamlParser) mappingValue(m map[string]any, key, val string, l yamlLine, indent int) error {
	if val != "" {
		v, err := parseFlowValue(val, l.num)
		if err != nil {
			return err
		}
		m[key] = v
		return nil
	}
	if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
		v, err := p.block(p.lines[p.pos].indent)
		if err != nil {
			return err
		}
		m[key] = v
		return nil
	}
	m[key] = nil
	return nil
}

func isMappingStart(s string) bool {
	k, _, err := splitKey(s, 0)
	return err == nil && k != "" && !strings.ContainsAny(k, "[]{},\"'")
}

// splitKey splits "key: value" / "key:" at the first colon outside
// quotes that is followed by space or end of line.
func splitKey(s string, num int) (key, val string, err error) {
	var quote byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '"' || c == '\'':
			quote = c
		case c == ':':
			if i+1 == len(s) {
				return unquoteKey(s[:i]), "", nil
			}
			if s[i+1] == ' ' {
				return unquoteKey(s[:i]), strings.TrimSpace(s[i+1:]), nil
			}
		}
	}
	return "", "", fmt.Errorf("scenario: yaml line %d: expected \"key: value\", got %q", num, s)
}

func unquoteKey(s string) string {
	s = strings.TrimSpace(s)
	if len(s) >= 2 && (s[0] == '"' || s[0] == '\'') && s[len(s)-1] == s[0] {
		return s[1 : len(s)-1]
	}
	return s
}

// parseFlowValue parses an inline value: a flow collection or scalar.
func parseFlowValue(s string, num int) (any, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	switch s[0] {
	case '[', '{':
		v, rest, err := parseFlow(s, num)
		if err != nil {
			return nil, err
		}
		if strings.TrimSpace(rest) != "" {
			return nil, fmt.Errorf("scenario: yaml line %d: trailing content %q after flow value", num, rest)
		}
		return v, nil
	case '&', '*', '|', '>':
		return nil, fmt.Errorf("scenario: yaml line %d: %q values are not supported in the yaml subset", num, string(s[0]))
	}
	return parseScalar(s), nil
}

// parseFlow parses one flow collection or scalar element, returning
// the unconsumed remainder.
func parseFlow(s string, num int) (any, string, error) {
	s = strings.TrimLeft(s, " ")
	if s == "" {
		return nil, "", fmt.Errorf("scenario: yaml line %d: unterminated flow collection", num)
	}
	switch s[0] {
	case '[':
		var out []any
		s = strings.TrimLeft(s[1:], " ")
		if strings.HasPrefix(s, "]") {
			return []any{}, s[1:], nil
		}
		for {
			v, rest, err := parseFlow(s, num)
			if err != nil {
				return nil, "", err
			}
			out = append(out, v)
			rest = strings.TrimLeft(rest, " ")
			switch {
			case strings.HasPrefix(rest, ","):
				s = rest[1:]
			case strings.HasPrefix(rest, "]"):
				return out, rest[1:], nil
			default:
				return nil, "", fmt.Errorf("scenario: yaml line %d: expected ',' or ']' in flow sequence, got %q", num, rest)
			}
		}
	case '{':
		m := map[string]any{}
		s = strings.TrimLeft(s[1:], " ")
		if strings.HasPrefix(s, "}") {
			return m, s[1:], nil
		}
		for {
			colon := strings.IndexByte(s, ':')
			if colon < 0 {
				return nil, "", fmt.Errorf("scenario: yaml line %d: expected \"key: value\" in flow mapping", num)
			}
			key := unquoteKey(s[:colon])
			v, rest, err := parseFlow(s[colon+1:], num)
			if err != nil {
				return nil, "", err
			}
			m[key] = v
			rest = strings.TrimLeft(rest, " ")
			switch {
			case strings.HasPrefix(rest, ","):
				s = strings.TrimLeft(rest[1:], " ")
			case strings.HasPrefix(rest, "}"):
				return m, rest[1:], nil
			default:
				return nil, "", fmt.Errorf("scenario: yaml line %d: expected ',' or '}' in flow mapping, got %q", num, rest)
			}
		}
	case '"', '\'':
		q := s[0]
		end := strings.IndexByte(s[1:], q)
		if end < 0 {
			return nil, "", fmt.Errorf("scenario: yaml line %d: unterminated string", num)
		}
		return s[1 : 1+end], s[2+end:], nil
	}
	// Bare scalar: up to the next flow delimiter.
	end := strings.IndexAny(s, ",]}")
	if end < 0 {
		return parseScalar(strings.TrimSpace(s)), "", nil
	}
	return parseScalar(strings.TrimSpace(s[:end])), s[end:], nil
}

// parseScalar interprets a bare scalar: null, booleans and numbers get
// native types, everything else stays a string (so durations like
// "2ms" and sizes like "64K" survive for the typed decode).
func parseScalar(s string) any {
	if len(s) >= 2 && (s[0] == '"' || s[0] == '\'') && s[len(s)-1] == s[0] {
		return s[1 : len(s)-1]
	}
	switch s {
	case "null", "~":
		return nil
	case "true":
		return true
	case "false":
		return false
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return i
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f
	}
	return s
}
