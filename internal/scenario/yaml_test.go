package scenario

import (
	"reflect"
	"strings"
	"testing"
)

func TestYAMLBasicMapping(t *testing.T) {
	src := `
# a scenario header
name: demo          # trailing comment
seed: 42
procs: 4
pi: 3.5
on: true
off: false
empty: null
label: "quoted # not a comment"
`
	v, err := parseYAML([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{
		"name": "demo", "seed": int64(42), "procs": int64(4),
		"pi": 3.5, "on": true, "off": false, "empty": nil,
		"label": "quoted # not a comment",
	}
	if !reflect.DeepEqual(v, want) {
		t.Fatalf("got %#v\nwant %#v", v, want)
	}
}

func TestYAMLNestedBlocksAndSequences(t *testing.T) {
	src := `
workload:
  kind: exchange
  size: 64K
chaos:
  - label: first
    at: 1ms
    links: [0->1, 1->2]
  - label: second
    at: 2ms
ranks:
  - 0
  - 1
inline: {a: 1, b: [x, y]}
`
	v, err := parseYAML([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	m := v.(map[string]any)
	wl := m["workload"].(map[string]any)
	if wl["kind"] != "exchange" || wl["size"] != "64K" {
		t.Fatalf("workload = %#v", wl)
	}
	chaos := m["chaos"].([]any)
	if len(chaos) != 2 {
		t.Fatalf("chaos = %#v", chaos)
	}
	first := chaos[0].(map[string]any)
	if first["label"] != "first" || first["at"] != "1ms" {
		t.Fatalf("first = %#v", first)
	}
	if links := first["links"].([]any); len(links) != 2 || links[0] != "0->1" {
		t.Fatalf("links = %#v", first["links"])
	}
	if ranks := m["ranks"].([]any); !reflect.DeepEqual(ranks, []any{int64(0), int64(1)}) {
		t.Fatalf("ranks = %#v", ranks)
	}
	inline := m["inline"].(map[string]any)
	if inline["a"] != int64(1) {
		t.Fatalf("inline = %#v", inline)
	}
	if b := inline["b"].([]any); !reflect.DeepEqual(b, []any{"x", "y"}) {
		t.Fatalf("inline.b = %#v", inline["b"])
	}
}

func TestYAMLRejections(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"tab", "a:\n\tb: 1", "tabs are not allowed"},
		{"multidoc", "a: 1\n---\nb: 2", "multi-document"},
		{"anchor", "a: &x 1", "not supported"},
		{"duplicate", "a: 1\na: 2", "duplicate key"},
		{"badline", "just words\n", "key: value"},
		{"unterminated", `a: [1, 2`, "expected ',' or ']'"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := parseYAML([]byte(c.src))
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want substring %q", err, c.want)
			}
		})
	}
}
