// Package stats provides the small summary-statistics helpers the
// experiment harnesses use when aggregating per-rank measurements.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Min returns the smallest element (0 for an empty slice).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element (0 for an empty slice).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank on a sorted copy.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if p < 0 || p > 100 {
		panic("stats: percentile out of range")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p == 0 {
		return sorted[0]
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	return sorted[rank-1]
}
