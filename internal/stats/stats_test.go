package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasics(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if m := Mean(xs); m != 2.5 {
		t.Errorf("Mean = %v", m)
	}
	if m := Min(xs); m != 1 {
		t.Errorf("Min = %v", m)
	}
	if m := Max(xs); m != 4 {
		t.Errorf("Max = %v", m)
	}
	if sd := StdDev(xs); math.Abs(sd-math.Sqrt(1.25)) > 1e-12 {
		t.Errorf("StdDev = %v", sd)
	}
}

func TestEmptyInputs(t *testing.T) {
	if Mean(nil) != 0 || Min(nil) != 0 || Max(nil) != 0 || StdDev(nil) != 0 || Percentile(nil, 50) != 0 {
		t.Fatal("empty inputs should yield zero")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := Percentile(xs, 0); p != 1 {
		t.Errorf("P0 = %v", p)
	}
	if p := Percentile(xs, 50); p != 5 {
		t.Errorf("P50 = %v", p)
	}
	if p := Percentile(xs, 100); p != 10 {
		t.Errorf("P100 = %v", p)
	}
	if p := Percentile(xs, 91); p != 10 {
		t.Errorf("P91 = %v", p)
	}
}

func TestPercentileOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Percentile([]float64{1}, 101)
}

// Property: Min <= Percentile(p) <= Max for any p, and Min <= Mean <=
// Max.
func TestQuickOrderInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, rng.Intn(50)+1)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		lo, hi, mean := Min(xs), Max(xs), Mean(xs)
		if mean < lo || mean > hi {
			return false
		}
		for p := 0.0; p <= 100; p += 7 {
			v := Percentile(xs, p)
			if v < lo || v > hi {
				return false
			}
		}
		return Percentile(xs, 100) == hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
