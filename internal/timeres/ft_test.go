package timeres

import (
	"testing"
	"time"

	"ovlp/internal/cluster"
	"ovlp/internal/fabric"
	"ovlp/internal/mpi"
	"ovlp/internal/trace"
)

// ftRingWL drives the analyzer through a crash recovery.
type ftRingWL struct {
	steps   int
	bytes   int
	compute time.Duration
}

func (w *ftRingWL) Name() string             { return "ring" }
func (w *ftRingWL) Steps() int               { return w.steps }
func (w *ftRingWL) StateBytes(procs int) int { return w.bytes }
func (w *ftRingWL) Init(c *mpi.Comm)         { c.Bcast(0, 8) }
func (w *ftRingWL) Step(c *mpi.Comm, step int) {
	r := c.Host()
	if n := c.Size(); n > 1 {
		next, prev := (c.Rank()+1)%n, (c.Rank()+n-1)%n
		c.Sendrecv(next, 5, w.bytes, prev, 5)
	}
	r.Compute(w.compute)
	c.Allreduce(8)
}

// TestWindowsSplitAtEpochCuts: under a crash recovery, every observed
// epoch-cut instant is a window boundary (no window averages across
// it), windows carry the epoch in force, and the five-bucket
// conservation invariant survives the irregular window widths.
func TestWindowsSplitAtEpochCuts(t *testing.T) {
	tr := trace.New(trace.Options{})
	a := New(Options{Window: 500 * time.Microsecond})
	tr.AddSink(a)
	cfg := cluster.Config{
		Procs:    4,
		MPI:      mpi.Config{Instrument: &mpi.InstrumentConfig{}},
		Crashes:  &fabric.CrashPlan{Crashes: []fabric.Crash{{Node: 2, At: us(800)}}},
		Deadline: 10 * time.Second,
		Trace:    tr,
	}
	wl := &ftRingWL{steps: 8, bytes: 256 << 10, compute: 100 * time.Microsecond}
	res, err := cluster.RunFT(cfg, cluster.FTOptions{}, wl)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Epochs != 1 {
		t.Fatalf("recovery did not happen: completed=%v epochs=%d", res.Completed, res.Epochs)
	}
	a.SetTable(res.Calib)
	a.Finalize(res.Duration)
	if err := a.Err(); err != nil {
		t.Fatalf("analyzer error: %v", err)
	}
	s := a.Snapshot()
	checkConservation(t, s)

	// Gather the distinct cut instants straight from the analyzer.
	cuts := cutBounds(a.cuts, s.Duration)
	if len(cuts) == 0 {
		t.Fatal("no epoch cuts observed in the trace stream")
	}
	boundaries := make(map[time.Duration]bool, len(s.Windows))
	for _, w := range s.Windows {
		boundaries[w.Start] = true
	}
	for _, c := range cuts {
		if !boundaries[c] {
			t.Errorf("cut instant %v is not a window boundary", c)
		}
	}
	// No window straddles a cut.
	for _, w := range s.Windows {
		for _, c := range cuts {
			if w.Start < c && c < w.End {
				t.Errorf("window [%v, %v) straddles cut %v", w.Start, w.End, c)
			}
		}
	}
	// Epoch tags are monotone and reach the final epoch.
	last := 0
	for _, w := range s.Windows {
		if w.Epoch < last {
			t.Errorf("window at %v: epoch went backwards (%d after %d)", w.Start, w.Epoch, last)
		}
		last = w.Epoch
	}
	if last != res.Epochs {
		t.Errorf("final window epoch %d, run entered %d", last, res.Epochs)
	}
}

// TestFailureFreeWindowsUnchanged: without cuts the windows remain
// uniform tumbling windows with epoch 0 — pre-FT output is unchanged.
func TestFailureFreeWindowsUnchanged(t *testing.T) {
	w := workloads()[0]
	a, res, _ := runAnalyzed(t, w.cfg, Options{Window: 200 * time.Microsecond}, w.body)
	s := a.Snapshot()
	for i, win := range s.Windows {
		if win.Epoch != 0 {
			t.Fatalf("window %d has epoch %d in a failure-free run", i, win.Epoch)
		}
		if i < len(s.Windows)-1 && win.End-win.Start != 200*time.Microsecond {
			t.Fatalf("window %d has irregular width %v", i, win.End-win.Start)
		}
	}
	_ = res
}
