package timeres

import (
	"sort"
	"time"
)

// span is one half-open interval [s, e) on the virtual timeline. The
// analyzer's five-bucket classification is interval arithmetic over
// merged span sets: intersection splits spans at bucket and window
// boundaries, which is what makes split-span accounting conserve time
// exactly.
type span struct{ s, e time.Duration }

// mergeSpans sorts a copy of v by start and coalesces overlapping or
// touching intervals.
func mergeSpans(v []span) []span {
	if len(v) == 0 {
		return nil
	}
	c := make([]span, len(v))
	copy(c, v)
	sort.Slice(c, func(i, j int) bool {
		if c[i].s != c[j].s {
			return c[i].s < c[j].s
		}
		return c[i].e < c[j].e
	})
	out := c[:1]
	for _, sp := range c[1:] {
		last := &out[len(out)-1]
		if sp.s <= last.e {
			if sp.e > last.e {
				last.e = sp.e
			}
			continue
		}
		out = append(out, sp)
	}
	return out
}

// intersectSpans returns a ∩ b; both inputs must be merged-sorted.
func intersectSpans(a, b []span) []span {
	var out []span
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		lo, hi := a[i].s, a[i].e
		if b[j].s > lo {
			lo = b[j].s
		}
		if b[j].e < hi {
			hi = b[j].e
		}
		if hi > lo {
			out = append(out, span{lo, hi})
		}
		if a[i].e < b[j].e {
			i++
		} else {
			j++
		}
	}
	return out
}

// subtractSpans returns a − b; both inputs must be merged-sorted.
func subtractSpans(a, b []span) []span {
	var out []span
	j := 0
	for _, sp := range a {
		lo := sp.s
		for j < len(b) && b[j].e <= lo {
			j++
		}
		k := j
		for k < len(b) && b[k].s < sp.e {
			if b[k].s > lo {
				out = append(out, span{lo, b[k].s})
			}
			if b[k].e > lo {
				lo = b[k].e
			}
			k++
		}
		if lo < sp.e {
			out = append(out, span{lo, sp.e})
		}
	}
	return out
}

// clipSum returns the total length of v ∩ [lo, hi); v must be
// merged-sorted.
func clipSum(v []span, lo, hi time.Duration) time.Duration {
	i := sort.Search(len(v), func(i int) bool { return v[i].e > lo })
	var total time.Duration
	for ; i < len(v) && v[i].s < hi; i++ {
		a, b := v[i].s, v[i].e
		if lo > a {
			a = lo
		}
		if hi < b {
			b = hi
		}
		if b > a {
			total += b - a
		}
	}
	return total
}
