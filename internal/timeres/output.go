package timeres

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"ovlp/internal/report"
)

// WriteCSV renders the snapshot as a deterministic CSV with three
// sections — windows, phases, per-rank cells — every duration as
// integer nanoseconds and every efficiency with six decimals, so a
// pinned seed byte-compares against a golden file.
func (s *Snapshot) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# ovlp time-resolved metrics v%d\n", s.Schema); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "# ranks=%d window_ns=%d duration_ns=%d priced=%v\n",
		len(s.Ranks), int64(s.Window), int64(s.Duration), s.Priced); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "window,start_ns,end_ns,par_eff,load_bal,comm_eff,xfer_eff,ser_eff,xfers,data_ns,min_ov_ns,max_ov_ns"); err != nil {
		return err
	}
	row := func(label string, sl *Slice) error {
		_, err := fmt.Fprintf(w, "%s,%d,%d,%.6f,%.6f,%.6f,%.6f,%.6f,%d,%d,%d,%d\n",
			label, int64(sl.Start), int64(sl.End),
			sl.Eff.Parallel, sl.Eff.LoadBalance, sl.Eff.Comm, sl.Eff.Transfer, sl.Eff.Serialization,
			sl.Overlap.Transfers, int64(sl.Overlap.Data), int64(sl.Overlap.MinOv), int64(sl.Overlap.MaxOv))
		return err
	}
	for i := range s.Windows {
		if err := row(fmt.Sprintf("%d", i), &s.Windows[i]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, "phase,kind,start_ns,end_ns,par_eff,load_bal,comm_eff,xfer_eff,ser_eff,xfers,data_ns,min_ov_ns,max_ov_ns"); err != nil {
		return err
	}
	for i := range s.Phases {
		ph := &s.Phases[i]
		if _, err := fmt.Fprintf(w, "%d,%s,%d,%d,%.6f,%.6f,%.6f,%.6f,%.6f,%d,%d,%d,%d\n",
			i, ph.Kind, int64(ph.Start), int64(ph.End),
			ph.Eff.Parallel, ph.Eff.LoadBalance, ph.Eff.Comm, ph.Eff.Transfer, ph.Eff.Serialization,
			ph.Overlap.Transfers, int64(ph.Overlap.Data), int64(ph.Overlap.MinOv), int64(ph.Overlap.MaxOv)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, "cell,rank,window,compute_ns,lib_active_ns,wire_wait_ns,ser_wait_ns,idle_ns"); err != nil {
		return err
	}
	for wi := range s.Windows {
		for _, c := range s.Windows[wi].Cells {
			if _, err := fmt.Fprintf(w, "cell,%d,%d,%d,%d,%d,%d,%d\n",
				c.Rank, wi, int64(c.Compute), int64(c.LibActive),
				int64(c.WireWait), int64(c.SerWait), int64(c.Idle)); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteJSON renders the snapshot as indented JSON (the web view's and
// -timeresolved .json's payload).
func (s *Snapshot) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteText renders aligned window and phase tables for humans.
func (s *Snapshot) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "time-resolved metrics: %d rank(s), window %v, duration %v\n",
		len(s.Ranks), s.Window, s.Duration)
	tb := report.NewTable("windows", "#", "span", "PE", "LB", "CommE", "TE", "SerE", "xfers", "overlap")
	for i := range s.Windows {
		tb.AddRow(sliceCells(i, &s.Windows[i])...)
	}
	tb.Render(w)
	pb := report.NewTable("phases", "#", "kind", "span", "PE", "LB", "CommE", "TE", "SerE", "xfers", "overlap")
	for i := range s.Phases {
		ph := &s.Phases[i]
		cells := append([]any{fmt.Sprintf("%d", i), ph.Kind}, sliceCells(i, ph)[1:]...)
		pb.AddRow(cells...)
	}
	pb.Render(w)
	return nil
}

func sliceCells(i int, sl *Slice) []any {
	return []any{
		fmt.Sprintf("%d", i),
		fmt.Sprintf("%v..%v", sl.Start, sl.End),
		fmt.Sprintf("%.3f", sl.Eff.Parallel),
		fmt.Sprintf("%.3f", sl.Eff.LoadBalance),
		fmt.Sprintf("%.3f", sl.Eff.Comm),
		fmt.Sprintf("%.3f", sl.Eff.Transfer),
		fmt.Sprintf("%.3f", sl.Eff.Serialization),
		fmt.Sprintf("%d", sl.Overlap.Transfers),
		overlapRange(sl.Overlap),
	}
}

func overlapRange(b OverlapBin) string {
	if b.Transfers == 0 {
		return "-"
	}
	return fmt.Sprintf("%v..%v", b.MinOv, b.MaxOv)
}

// MinMetric returns the minimum value of the named metric over the
// snapshot slices overlapping [from, to) — phases of the given kind
// when phase is non-empty, windows otherwise. to <= 0 means the run
// end. The returned count says how many slices were considered; zero
// means the scope selected nothing.
func (s *Snapshot) MinMetric(metric string, from, to time.Duration, phase string) (float64, int, error) {
	if _, ok := (Efficiency{}).Get(metric); !ok {
		return 0, 0, fmt.Errorf("timeres: unknown metric %q", metric)
	}
	if to <= 0 {
		to = s.Duration
	}
	slices := s.Windows
	if phase != "" {
		slices = s.Phases
	}
	minV, n := 0.0, 0
	for i := range slices {
		sl := &slices[i]
		if phase != "" && sl.Kind != phase {
			continue
		}
		if sl.End <= from || sl.Start >= to {
			continue
		}
		v, _ := sl.Eff.Get(metric)
		if n == 0 || v < minV {
			minV = v
		}
		n++
	}
	return minV, n, nil
}
