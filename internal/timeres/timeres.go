// Package timeres computes time-resolved standard metrics over the
// trace stream: rolling-window and per-phase POP-style efficiencies
// (parallel, load balance, communication, serialization, transfer)
// per rank and aggregate, plus per-window/per-phase overlap min/max
// bounds reusing the profile package's replay arithmetic.
//
// The analyzer is an incremental trace.Sink: it consumes records the
// moment each layer emits them (no post-hoc re-parse), so the same
// instance serves three consumers — the offline `ovlprof
// -timeresolved` report, the live `ovltop` console, and the scenario
// engine's `time_resolved` assertions. Under the simulator's
// coroutine discipline emission is single-threaded, but live viewers
// read snapshots from another goroutine, so the analyzer carries its
// own mutex.
//
// Per rank and window the classification is exhaustive — every
// nanosecond lands in exactly one of five buckets (compute, library
// active, wire wait, serialization wait, idle), a conservation
// invariant the tests assert on micro and NAS workloads:
//
//	Compute   = compute spans outside library calls
//	LibActive = in a library call and running
//	WireWait  = parked in a call while own wire traffic is in flight
//	SerWait   = parked in a call with no own wire traffic
//	Idle      = everything else (parked in user code, not yet spawned)
//
// From the per-rank compute totals c_r over a window of length W with
// R ranks (following "Trace-based, time-resolved analysis of MPI
// application performance using standard metrics"):
//
//	PE  = avg(c_r)/W            parallel efficiency
//	LB  = avg(c_r)/max(c_r)     load balance
//	CE  = max(c_r)/W            communication efficiency  (PE = LB·CE)
//	TE  = 1 − avg(wirewait_r)/W transfer efficiency
//	SE  = CE/TE                 serialization efficiency  (CE = SE·TE)
package timeres

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"ovlp/internal/calib"
	"ovlp/internal/profile"
	"ovlp/internal/trace"
)

// Schema versions the snapshot JSON.
const Schema = 1

// DefaultWindow is the rolling-window length when Options.Window is
// zero.
const DefaultWindow = 100 * time.Microsecond

// DefaultPhaseFrac is the fraction of ranks that must be inside a
// library call for the run to count as an exchange phase.
const DefaultPhaseFrac = 0.5

// Options parameterizes an Analyzer.
type Options struct {
	// Window is the tumbling-window length; 0 means DefaultWindow. The
	// last window is clipped to the run's end.
	Window time.Duration
	// PhaseFrac is the in-library rank fraction marking an exchange
	// phase; 0 means DefaultPhaseFrac.
	PhaseFrac float64
	// Table prices overlap bounds; may be nil at construction and
	// supplied later via SetTable (a live sink attaches before the run
	// calibrates).
	Table *calib.Table
	// ReplayWindow is the user-interval retention for hardware-stamped
	// bounds; 0 selects the overlap monitor's default.
	ReplayWindow int
}

// Cell is one rank's exhaustive five-bucket time classification over
// one window or phase. Total() always equals the slice length — the
// conservation invariant.
type Cell struct {
	Rank      int           `json:"rank"`
	Compute   time.Duration `json:"compute_ns"`
	LibActive time.Duration `json:"lib_active_ns"`
	WireWait  time.Duration `json:"wire_wait_ns"`
	SerWait   time.Duration `json:"ser_wait_ns"`
	Idle      time.Duration `json:"idle_ns"`
}

// Total sums the five buckets.
func (c Cell) Total() time.Duration {
	return c.Compute + c.LibActive + c.WireWait + c.SerWait + c.Idle
}

// Efficiency is the aggregate metric set of one window or phase.
type Efficiency struct {
	Parallel      float64 `json:"par_eff"`
	LoadBalance   float64 `json:"load_bal"`
	Comm          float64 `json:"comm_eff"`
	Transfer      float64 `json:"xfer_eff"`
	Serialization float64 `json:"ser_eff"`
}

// MetricNames lists the assertable metric keys in fixed order.
func MetricNames() []string {
	return []string{"par_eff", "load_bal", "comm_eff", "xfer_eff", "ser_eff"}
}

// Get returns the named metric value.
func (e Efficiency) Get(name string) (float64, bool) {
	switch name {
	case "par_eff":
		return e.Parallel, true
	case "load_bal":
		return e.LoadBalance, true
	case "comm_eff":
		return e.Comm, true
	case "xfer_eff":
		return e.Transfer, true
	case "ser_eff":
		return e.Serialization, true
	}
	return 0, false
}

// OverlapBin sums the priced overlap bounds of the transfers whose
// completion stamp fell inside one window or phase.
type OverlapBin struct {
	Transfers int           `json:"transfers"`
	Data      time.Duration `json:"data_ns"`
	MinOv     time.Duration `json:"min_ov_ns"`
	MaxOv     time.Duration `json:"max_ov_ns"`
}

// Slice is one window or phase: its boundaries, per-rank cells,
// aggregate efficiencies and overlap bin.
type Slice struct {
	Index int `json:"index"`
	// Kind is "compute" or "exchange" for phases, empty for windows.
	Kind  string        `json:"kind,omitempty"`
	Start time.Duration `json:"start_ns"`
	End   time.Duration `json:"end_ns"`
	// Epoch is the recovery epoch in force at Start (0 until the first
	// epoch cut). Windows never span an epoch boundary: every observed
	// cut instant also terminates a window, so pre- and post-recovery
	// efficiency are never averaged together.
	Epoch   int        `json:"epoch,omitempty"`
	Cells   []Cell     `json:"cells"`
	Eff     Efficiency `json:"eff"`
	Overlap OverlapBin `json:"overlap"`
}

// Snapshot is a point-in-time view of the analysis: live consumers
// take one per refresh, offline consumers take one after Finalize.
type Snapshot struct {
	Schema int `json:"schema"`
	// Ranks lists the observed rank ids in ascending order.
	Ranks    []int         `json:"ranks"`
	Window   time.Duration `json:"window_ns"`
	Duration time.Duration `json:"duration_ns"`
	// Priced reports whether overlap bins were computed (a calibration
	// table was available).
	Priced  bool    `json:"priced"`
	Windows []Slice `json:"windows"`
	Phases  []Slice `json:"phases"`
}

// rankState accumulates one rank's raw interval evidence.
type rankState struct {
	rank            int
	comp, park, lib []span
}

// trackState dispatches one host track: rs is nil for non-rank procs
// (progress agents), whose records still feed the replay so no
// transfer sample is lost.
type trackState struct {
	rs   *rankState
	rr   *profile.RankReplay
	cuts []time.Duration // this track's epoch-cut instants, in order
}

type trackRef struct {
	group trace.Group
	id    int
}

// Analyzer consumes trace records incrementally and serves metric
// snapshots. Create with New, attach via trace.Tracer.AddSink.
type Analyzer struct {
	mu       sync.Mutex
	opts     Options
	table    *calib.Table
	tracks   map[trackRef]*trackState
	ranks    map[int]*rankState
	wire     map[int][]span
	samples  []profile.XferSample
	cuts     []time.Duration
	seen     time.Duration
	total    time.Duration
	finished bool
}

// New creates an empty analyzer.
func New(opts Options) *Analyzer {
	if opts.Window <= 0 {
		opts.Window = DefaultWindow
	}
	if opts.PhaseFrac <= 0 {
		opts.PhaseFrac = DefaultPhaseFrac
	}
	return &Analyzer{
		opts:   opts,
		table:  opts.Table,
		tracks: make(map[trackRef]*trackState),
		ranks:  make(map[int]*rankState),
		wire:   make(map[int][]span),
	}
}

// SetTable supplies (or replaces) the calibration table pricing the
// overlap bins — typically once the run has calibrated.
func (a *Analyzer) SetTable(t *calib.Table) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if t != nil {
		a.table = t
	}
}

// Window returns the analyzer's window length.
func (a *Analyzer) Window() time.Duration { return a.opts.Window }

// TraceRec implements trace.Sink.
func (a *Analyzer) TraceRec(tk *trace.Track, r trace.Rec) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.finished {
		return
	}
	switch tk.Group() {
	case trace.GroupHost:
		a.feedHost(trackRef{tk.Group(), tk.ID()}, tk.Name(), r)
	case trace.GroupNIC:
		if r.Cat == "wire" && r.Name == "xfer" {
			a.feedWire(tk.ID(), r.Args.Peer, r.Start.Duration(), r.End().Duration())
		}
	}
}

func (a *Analyzer) feedHost(ref trackRef, name string, r trace.Rec) {
	if e := r.End().Duration(); e > a.seen {
		a.seen = e
	}
	ts, ok := a.tracks[ref]
	if !ok {
		ts = &trackState{rr: profile.NewRankReplay(a.opts.ReplayWindow, func(x profile.XferSample) {
			a.samples = append(a.samples, x)
		})}
		if rank, isRank := rankOf(name); isRank {
			rs, seen := a.ranks[rank]
			if !seen {
				rs = &rankState{rank: rank}
				a.ranks[rank] = rs
			}
			ts.rs = rs
		}
		a.tracks[ref] = ts
	}
	ts.rr.Feed(r)
	if r.Cat == "overlap" && r.Name == "epoch-cut" {
		at := r.Start.Duration()
		ts.cuts = append(ts.cuts, at)
		a.cuts = append(a.cuts, at)
	}
	if ts.rs == nil || r.Dur <= 0 {
		return
	}
	sp := span{r.Start.Duration(), r.End().Duration()}
	switch r.Cat {
	case "kernel":
		switch r.Name {
		case "compute":
			ts.rs.comp = append(ts.rs.comp, sp)
		case "park":
			ts.rs.park = append(ts.rs.park, sp)
		}
	case "mpi", "armci":
		if r.Name != "attach" {
			ts.rs.lib = append(ts.rs.lib, sp)
		}
	}
}

func (a *Analyzer) feedWire(src, dst int, start, end time.Duration) {
	if end > a.seen {
		a.seen = end
	}
	if end <= start {
		return
	}
	sp := span{start, end}
	a.wire[src] = append(a.wire[src], sp)
	if dst >= 0 && dst != src {
		a.wire[dst] = append(a.wire[dst], sp)
	}
}

// Finalize marks the stream complete: still-open transfers resolve as
// truncated (exactly like the overlap monitor at Finalize) and the
// run duration is pinned to total (or the largest stamp seen, if
// later). Idempotent; records fed afterwards are ignored.
func (a *Analyzer) Finalize(total time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.finished {
		return
	}
	a.finished = true
	for _, ts := range a.tracks {
		ts.rr.Finish()
	}
	a.total = a.seen
	if total > a.total {
		a.total = total
	}
}

// Err returns the first replay error any track hit (nil when clean).
func (a *Analyzer) Err() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, ts := range a.tracks {
		if err := ts.rr.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Events returns the replayed monitor-event count across all tracks.
func (a *Analyzer) Events() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, ts := range a.tracks {
		n += ts.rr.Events()
	}
	return n
}

// Snapshot computes the current windows, phases and efficiencies. Safe
// to call concurrently with emission (live view) and after Finalize
// (final report).
func (a *Analyzer) Snapshot() *Snapshot {
	a.mu.Lock()
	defer a.mu.Unlock()

	s := &Snapshot{Schema: Schema, Window: a.opts.Window}
	for rank := range a.ranks {
		s.Ranks = append(s.Ranks, rank)
	}
	sort.Ints(s.Ranks)

	total := a.total
	if !a.finished {
		total = a.seen
	}
	s.Duration = total
	if total <= 0 {
		return s
	}

	// Per rank: merge the raw evidence and derive the bucket sets once;
	// windows and phases both slice the same derived lists.
	type derived struct {
		comp, lib, parkLib, wireWait, compLib []span
	}
	der := make([]derived, len(s.Ranks))
	libs := make([][]span, len(s.Ranks))
	for i, rank := range s.Ranks {
		rs := a.ranks[rank]
		d := &der[i]
		d.comp = mergeSpans(rs.comp)
		d.lib = mergeSpans(rs.lib)
		park := mergeSpans(rs.park)
		wire := mergeSpans(a.wire[rank])
		d.parkLib = intersectSpans(park, d.lib)
		d.wireWait = intersectSpans(d.parkLib, wire)
		d.compLib = intersectSpans(d.comp, d.lib)
		libs[i] = d.lib
	}

	cellsFor := func(lo, hi time.Duration) []Cell {
		cells := make([]Cell, len(s.Ranks))
		for i, rank := range s.Ranks {
			d := &der[i]
			parkLib := clipSum(d.parkLib, lo, hi)
			wireWait := clipSum(d.wireWait, lo, hi)
			c := Cell{
				Rank:      rank,
				Compute:   clipSum(d.comp, lo, hi) - clipSum(d.compLib, lo, hi),
				LibActive: clipSum(d.lib, lo, hi) - parkLib,
				WireWait:  wireWait,
				SerWait:   parkLib - wireWait,
			}
			c.Idle = (hi - lo) - c.Compute - c.LibActive - c.WireWait - c.SerWait
			cells[i] = c
		}
		return cells
	}

	buildSlice := func(idx int, kind string, lo, hi time.Duration) Slice {
		cells := cellsFor(lo, hi)
		return Slice{Index: idx, Kind: kind, Start: lo, End: hi,
			Cells: cells, Eff: effOf(cells, hi-lo)}
	}

	// Tumbling windows, the last clipped to the run end (a window
	// larger than the run degenerates to one clipped window). Epoch-cut
	// instants are additional window boundaries: a window straddling a
	// cut splits there, and each window carries the epoch in force at
	// its start.
	w := a.opts.Window
	bounds := cutBounds(a.cuts, total)
	for lo, next := time.Duration(0), 0; lo < total; {
		hi := lo - lo%w + w // next tumbling boundary after lo
		if hi > total {
			hi = total
		}
		for next < len(bounds) && bounds[next] <= lo {
			next++
		}
		if next < len(bounds) && bounds[next] < hi {
			hi = bounds[next]
		}
		sl := buildSlice(len(s.Windows), "", lo, hi)
		sl.Epoch = a.epochAt(lo)
		s.Windows = append(s.Windows, sl)
		lo = hi
	}

	// Phases: alternate compute/exchange segments tiling [0, total].
	for _, ph := range detectPhases(libs, total, a.opts.PhaseFrac) {
		s.Phases = append(s.Phases, buildSlice(len(s.Phases), ph.kind, ph.s, ph.e))
	}

	a.priceOverlap(s, total)
	return s
}

// priceOverlap bins every transfer sample by completion stamp into
// the snapshot's windows and phases. Requires a calibration table
// when estimated-case samples exist; until one arrives the snapshot
// reports Priced=false with empty bins.
func (a *Analyzer) priceOverlap(s *Snapshot, total time.Duration) {
	if a.table == nil {
		for _, x := range a.samples {
			if x.Case != profile.CaseExact {
				return
			}
		}
	}
	s.Priced = true
	for i := range a.samples {
		x := &a.samples[i]
		xt, minOv, maxOv := x.Bounds(a.table)
		at := x.At
		if at > total {
			at = total
		}
		if len(s.Windows) > 0 {
			// Windows are ascending but not uniform (epoch cuts split
			// them), so find the first window ending after the stamp.
			wi := sort.Search(len(s.Windows), func(i int) bool { return s.Windows[i].End > at })
			if wi >= len(s.Windows) {
				wi = len(s.Windows) - 1
			}
			addBin(&s.Windows[wi].Overlap, xt, minOv, maxOv)
		}
		for pi := range s.Phases {
			ph := &s.Phases[pi]
			if at < ph.End || pi == len(s.Phases)-1 {
				addBin(&ph.Overlap, xt, minOv, maxOv)
				break
			}
		}
	}
}

// cutBounds returns the distinct cut instants inside (0, total),
// ascending — the extra window boundaries. Ranks cut at slightly
// different times during one recovery, so each observed instant is a
// boundary of its own.
func cutBounds(cuts []time.Duration, total time.Duration) []time.Duration {
	if len(cuts) == 0 {
		return nil
	}
	sorted := append([]time.Duration(nil), cuts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var out []time.Duration
	for _, c := range sorted {
		if c <= 0 || c >= total {
			continue
		}
		if len(out) > 0 && out[len(out)-1] == c {
			continue
		}
		out = append(out, c)
	}
	return out
}

// epochAt returns the recovery epoch in force at stamp: the largest
// number of cuts any single track had performed by then (per-track,
// since one recovery produces one cut per surviving rank, at slightly
// different instants).
func (a *Analyzer) epochAt(at time.Duration) int {
	epoch := 0
	for _, ts := range a.tracks {
		n := 0
		for _, c := range ts.cuts {
			if c <= at {
				n++
			}
		}
		if n > epoch {
			epoch = n
		}
	}
	return epoch
}

func addBin(b *OverlapBin, xt, minOv, maxOv time.Duration) {
	b.Transfers++
	b.Data += xt
	b.MinOv += minOv
	b.MaxOv += maxOv
}

// effOf computes the aggregate efficiencies of one slice from its
// per-rank cells.
func effOf(cells []Cell, w time.Duration) Efficiency {
	if len(cells) == 0 || w <= 0 {
		return Efficiency{}
	}
	var sumComp, maxComp, sumWW time.Duration
	for _, c := range cells {
		sumComp += c.Compute
		if c.Compute > maxComp {
			maxComp = c.Compute
		}
		sumWW += c.WireWait
	}
	r := float64(len(cells))
	fw := float64(w)
	avgComp := float64(sumComp) / r
	avgWW := float64(sumWW) / r
	e := Efficiency{
		Parallel: avgComp / fw,
		Comm:     float64(maxComp) / fw,
		Transfer: 1 - avgWW/fw,
	}
	if maxComp > 0 {
		e.LoadBalance = avgComp / float64(maxComp)
	} else {
		e.LoadBalance = 1
	}
	if e.Transfer > 0 {
		e.Serialization = e.Comm / e.Transfer
	}
	return e
}

// phaseSeg is one detected phase segment.
type phaseSeg struct {
	kind string
	s, e time.Duration
}

// detectPhases sweeps the ranks' in-library interval edges and
// classifies every instant: when at least ceil(frac·R) ranks (min 1)
// are inside a library call the run is exchanging, otherwise
// computing. Consecutive same-kind segments merge; the result tiles
// [0, total] exactly.
func detectPhases(libs [][]span, total time.Duration, frac float64) []phaseSeg {
	type edge struct {
		at    time.Duration
		delta int
	}
	var edges []edge
	for _, l := range libs {
		for _, sp := range l {
			edges = append(edges, edge{sp.s, +1}, edge{sp.e, -1})
		}
	}
	if len(edges) == 0 {
		return []phaseSeg{{kind: "compute", s: 0, e: total}}
	}
	// Starts before ends at equal stamps, so a back-to-back call chain
	// never dips below threshold for a zero-length instant.
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].at != edges[j].at {
			return edges[i].at < edges[j].at
		}
		return edges[i].delta > edges[j].delta
	})
	thr := int(math.Ceil(frac * float64(len(libs))))
	if thr < 1 {
		thr = 1
	}
	var segs []phaseSeg
	push := func(kind string, s, e time.Duration) {
		if e <= s {
			return
		}
		if n := len(segs); n > 0 && segs[n-1].kind == kind {
			segs[n-1].e = e
			return
		}
		segs = append(segs, phaseSeg{kind, s, e})
	}
	kindAt := func(count int) string {
		if count >= thr {
			return "exchange"
		}
		return "compute"
	}
	count := 0
	cursor := time.Duration(0)
	cur := kindAt(0)
	for i := 0; i < len(edges); {
		at := edges[i].at
		for i < len(edges) && edges[i].at == at {
			count += edges[i].delta
			i++
		}
		if at > total {
			at = total
		}
		if next := kindAt(count); next != cur {
			push(cur, cursor, at)
			if at >= total {
				cursor = total
				break
			}
			cur, cursor = next, at
		}
	}
	push(cur, cursor, total)
	return segs
}

// rankOf classifies a host-track name: rank tracks are a letter
// prefix plus a decimal rank id ("rank3", "armci0"); progress-agent
// tracks carry a dotted suffix and are excluded from per-rank
// classification.
func rankOf(name string) (int, bool) {
	i := len(name)
	for i > 0 && name[i-1] >= '0' && name[i-1] <= '9' {
		i--
	}
	if i == len(name) || i == 0 {
		return 0, false
	}
	for j := 0; j < i; j++ {
		c := name[j]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z') {
			return 0, false
		}
	}
	n := 0
	for j := i; j < len(name); j++ {
		n = n*10 + int(name[j]-'0')
	}
	return n, true
}

// FromInput runs the analyzer offline over a profile.Input — the
// bridge from exported trace files (ovlprof) to the same incremental
// machinery the live sink uses.
func FromInput(in profile.Input, opts Options) (*Snapshot, error) {
	if opts.Table == nil {
		opts.Table = in.Table
	}
	if opts.ReplayWindow == 0 {
		opts.ReplayWindow = in.Window
	}
	a := New(opts)
	a.mu.Lock()
	for i := range in.Ranks {
		rs := &in.Ranks[i]
		ref := trackRef{trace.GroupHost, rs.Rank}
		for _, rec := range rs.Recs {
			a.feedHost(ref, rs.Name, rec)
		}
	}
	for _, ws := range in.Wire {
		a.feedWire(ws.Src, ws.Dst, ws.Start, ws.End)
	}
	a.mu.Unlock()
	a.Finalize(in.Duration)
	if err := a.Err(); err != nil {
		return nil, fmt.Errorf("timeres: %w", err)
	}
	return a.Snapshot(), nil
}
