package timeres

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"ovlp/internal/cluster"
	"ovlp/internal/fabric"
	"ovlp/internal/mpi"
	"ovlp/internal/nas"
	"ovlp/internal/profile"
	"ovlp/internal/trace"
	"ovlp/internal/vtime"
)

func us(n int) vtime.Time { return vtime.Time(time.Duration(n) * time.Microsecond) }

func exchange(size int, reps int, compute time.Duration) func(r *mpi.Rank) {
	return func(r *mpi.Rank) {
		peer := 1 - r.ID()
		for i := 0; i < reps; i++ {
			r.PushRegion("exchange")
			var q *mpi.Request
			if r.ID() == 0 {
				q = r.Isend(peer, 0, size)
			} else {
				q = r.Irecv(peer, 0)
			}
			r.Compute(compute)
			r.Wait(q)
			r.PopRegion()
			r.Compute(10 * time.Microsecond)
		}
	}
}

type workload struct {
	name string
	cfg  cluster.Config
	body func(r *mpi.Rank)
}

func workloads() []workload {
	mk := func(proto mpi.LongProtocol, faults *fabric.FaultPlan) cluster.Config {
		return cluster.Config{
			Procs: 2,
			MPI: mpi.Config{
				Protocol:   proto,
				Instrument: &mpi.InstrumentConfig{},
			},
			Faults: faults,
		}
	}
	return []workload{
		{"eager-pipelined", mk(mpi.PipelinedRDMA, nil), exchange(10<<10, 40, 20*time.Microsecond)},
		{"rendezvous-direct", mk(mpi.DirectRDMARead, nil), exchange(1<<20, 10, 500*time.Microsecond)},
		{"direct-faulted", mk(mpi.DirectRDMARead,
			&fabric.FaultPlan{Seed: 7, Default: fabric.LinkFaults{DropRate: 0.1}}),
			exchange(64<<10, 20, 100*time.Microsecond)},
	}
}

// runAnalyzed runs a workload with the analyzer attached as a live
// sink, the way scenario/ovltop consume it.
func runAnalyzed(t *testing.T, cfg cluster.Config, opts Options, body func(r *mpi.Rank)) (*Analyzer, cluster.Result, *trace.Tracer) {
	t.Helper()
	tr := trace.New(trace.Options{})
	a := New(opts)
	tr.AddSink(a)
	cfg.Trace = tr
	res := cluster.Run(cfg, body)
	a.SetTable(res.Calib)
	a.Finalize(res.Duration)
	if err := a.Err(); err != nil {
		t.Fatalf("analyzer error: %v", err)
	}
	return a, res, tr
}

// checkConservation asserts the tentpole invariant: per window and
// per rank the five buckets sum to the window length exactly, the
// windows tile [0, duration], and the phases do too.
func checkConservation(t *testing.T, s *Snapshot) {
	t.Helper()
	if len(s.Windows) == 0 {
		t.Fatal("no windows")
	}
	var cursor time.Duration
	for _, sl := range s.Windows {
		if sl.Start != cursor {
			t.Fatalf("window %d starts at %v, want %v", sl.Index, sl.Start, cursor)
		}
		cursor = sl.End
		for _, c := range sl.Cells {
			if c.Total() != sl.End-sl.Start {
				t.Errorf("window %d rank %d: buckets sum to %v, window is %v (%+v)",
					sl.Index, c.Rank, c.Total(), sl.End-sl.Start, c)
			}
			if c.Compute < 0 || c.LibActive < 0 || c.WireWait < 0 || c.SerWait < 0 || c.Idle < 0 {
				t.Errorf("window %d rank %d: negative bucket %+v", sl.Index, c.Rank, c)
			}
		}
	}
	if cursor != s.Duration {
		t.Errorf("windows tile to %v, duration %v", cursor, s.Duration)
	}
	cursor = 0
	for _, ph := range s.Phases {
		if ph.Start != cursor {
			t.Fatalf("phase %d starts at %v, want %v", ph.Index, ph.Start, cursor)
		}
		if ph.Kind != "compute" && ph.Kind != "exchange" {
			t.Errorf("phase %d has kind %q", ph.Index, ph.Kind)
		}
		cursor = ph.End
		for _, c := range ph.Cells {
			if c.Total() != ph.End-ph.Start {
				t.Errorf("phase %d rank %d: buckets sum to %v, phase is %v",
					ph.Index, c.Rank, c.Total(), ph.End-ph.Start)
			}
		}
	}
	if cursor != s.Duration {
		t.Errorf("phases tile to %v, duration %v", cursor, s.Duration)
	}
	// The POP identity PE = LB × CommE holds per slice (float
	// arithmetic, so within epsilon).
	for _, sl := range s.Windows {
		if got := sl.Eff.LoadBalance * sl.Eff.Comm; abs(got-sl.Eff.Parallel) > 1e-9 {
			t.Errorf("window %d: LB×CommE = %v, PE = %v", sl.Index, got, sl.Eff.Parallel)
		}
	}
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

// checkAgainstProfile asserts that merging all windows (and,
// separately, all phases) reproduces the whole-run profile totals:
// same transfer count and identical summed min/max overlap bounds.
func checkAgainstProfile(t *testing.T, s *Snapshot, tr *trace.Tracer, res cluster.Result) {
	t.Helper()
	if !s.Priced {
		t.Fatal("snapshot not priced despite table being set")
	}
	p, err := profile.Analyze(profile.FromTracer(tr, res.Calib, res.Reports))
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	sum := func(slices []Slice) (n int, data, minOv, maxOv time.Duration) {
		for _, sl := range slices {
			n += sl.Overlap.Transfers
			data += sl.Overlap.Data
			minOv += sl.Overlap.MinOv
			maxOv += sl.Overlap.MaxOv
		}
		return
	}
	for _, part := range []struct {
		name   string
		slices []Slice
	}{{"windows", s.Windows}, {"phases", s.Phases}} {
		n, data, minOv, maxOv := sum(part.slices)
		if n != p.Totals.Transfers {
			t.Errorf("%s: %d transfers, profile %d", part.name, n, p.Totals.Transfers)
		}
		if data != p.Totals.DataTransferTime {
			t.Errorf("%s: data %v, profile %v", part.name, data, p.Totals.DataTransferTime)
		}
		if minOv != p.Totals.MinOverlapped || maxOv != p.Totals.MaxOverlapped {
			t.Errorf("%s: bounds [%v,%v], profile [%v,%v]",
				part.name, minOv, maxOv, p.Totals.MinOverlapped, p.Totals.MaxOverlapped)
		}
	}
}

func TestConservationMicro(t *testing.T) {
	for _, w := range workloads() {
		w := w
		t.Run(w.name, func(t *testing.T) {
			a, res, tr := runAnalyzed(t, w.cfg, Options{}, w.body)
			s := a.Snapshot()
			checkConservation(t, s)
			checkAgainstProfile(t, s, tr, res)
			if len(s.Ranks) != 2 {
				t.Errorf("ranks = %v, want [0 1]", s.Ranks)
			}
		})
	}
}

func TestConservationNAS(t *testing.T) {
	cfg := cluster.Config{
		Procs: 4,
		MPI: mpi.Config{
			Protocol:   mpi.DirectRDMARead,
			Instrument: &mpi.InstrumentConfig{},
		},
	}
	a, res, tr := runAnalyzed(t, cfg, Options{}, func(r *mpi.Rank) {
		nas.Run(nas.LU, r, nas.Params{Class: nas.ClassS, MaxIters: 2})
	})
	s := a.Snapshot()
	checkConservation(t, s)
	checkAgainstProfile(t, s, tr, res)
	// A real kernel must show both phase kinds.
	kinds := map[string]bool{}
	for _, ph := range s.Phases {
		kinds[ph.Kind] = true
	}
	if !kinds["exchange"] || !kinds["compute"] {
		t.Errorf("NAS run detected phases %v, want both kinds", kinds)
	}
}

// TestWindowLargerThanRun: the whole run fits in one clipped window.
func TestWindowLargerThanRun(t *testing.T) {
	w := workloads()[0]
	a, _, _ := runAnalyzed(t, w.cfg, Options{Window: time.Hour}, w.body)
	s := a.Snapshot()
	if len(s.Windows) != 1 {
		t.Fatalf("got %d windows, want 1", len(s.Windows))
	}
	if s.Windows[0].Start != 0 || s.Windows[0].End != s.Duration {
		t.Errorf("window [%v,%v), want [0,%v)", s.Windows[0].Start, s.Windows[0].End, s.Duration)
	}
	checkConservation(t, s)
}

// synthetic builds an analyzer from hand-placed spans on a raw
// tracer, bypassing the simulator.
func synthetic(opts Options, fill func(tr *trace.Tracer)) *Snapshot {
	tr := trace.New(trace.Options{MetricsOnly: true})
	a := New(opts)
	tr.AddSink(a)
	fill(tr)
	return a.Snapshot()
}

// TestRankIdleFullWindow: a rank with no spans in a window classifies
// the whole window as idle, load balance degrades, and conservation
// still holds.
func TestRankIdleFullWindow(t *testing.T) {
	s := synthetic(Options{Window: 100 * time.Microsecond}, func(tr *trace.Tracer) {
		r0 := tr.Track(trace.GroupHost, 1, "rank0")
		r1 := tr.Track(trace.GroupHost, 2, "rank1")
		// rank0 computes through both windows; rank1 computes only in
		// the first.
		r0.Span("kernel", "compute", us(0), us(200), trace.None)
		r1.Span("kernel", "compute", us(0), us(100), trace.None)
	})
	if len(s.Windows) != 2 {
		t.Fatalf("got %d windows, want 2", len(s.Windows))
	}
	w1 := s.Windows[1]
	var idleCell Cell
	for _, c := range w1.Cells {
		if c.Rank == 1 {
			idleCell = c
		}
	}
	if idleCell.Idle != 100*time.Microsecond || idleCell.Compute != 0 {
		t.Errorf("idle rank cell = %+v, want fully idle", idleCell)
	}
	if w1.Eff.LoadBalance != 0.5 {
		t.Errorf("window 1 load balance = %v, want 0.5", w1.Eff.LoadBalance)
	}
	if w1.Eff.Parallel != 0.5 || w1.Eff.Comm != 1.0 {
		t.Errorf("window 1 PE=%v CommE=%v, want 0.5/1.0", w1.Eff.Parallel, w1.Eff.Comm)
	}
	checkConservation(t, s)
}

// TestSplitSpanConservation: spans crossing window boundaries are
// split, and the split halves sum to the original span exactly.
func TestSplitSpanConservation(t *testing.T) {
	s := synthetic(Options{Window: 100 * time.Microsecond}, func(tr *trace.Tracer) {
		r0 := tr.Track(trace.GroupHost, 1, "rank0")
		// A compute span straddling the first boundary, a library call
		// straddling the second, parked for its tail.
		r0.Span("kernel", "compute", us(30), us(130), trace.None)
		r0.Span("kernel", "park", us(150), us(250), trace.Args{Peer: trace.NoPeer, Detail: "mpi.wait"})
		r0.Span("mpi", "Wait", us(130), us(250), trace.None)
	})
	if len(s.Windows) != 3 {
		t.Fatalf("got %d windows, want 3", len(s.Windows))
	}
	var comp, lib, ser time.Duration
	for _, sl := range s.Windows {
		c := sl.Cells[0]
		comp += c.Compute
		lib += c.LibActive
		ser += c.SerWait
	}
	if comp != 100*time.Microsecond {
		t.Errorf("summed compute %v, want 100µs", comp)
	}
	if lib != 20*time.Microsecond {
		t.Errorf("summed lib-active %v, want 20µs", lib)
	}
	if ser != 100*time.Microsecond {
		t.Errorf("summed ser-wait %v, want 100µs", ser)
	}
	// Window 1 splits the compute span (70µs) and the call (30µs
	// active + 0 parked → wait starts at 150µs, so 20µs active, 50µs... )
	w1 := s.Windows[1].Cells[0]
	if w1.Compute != 30*time.Microsecond {
		t.Errorf("window 1 compute %v, want 30µs", w1.Compute)
	}
	if got := s.Windows[1].Cells[0].Total(); got != 100*time.Microsecond {
		t.Errorf("window 1 total %v, want 100µs", got)
	}
	checkConservation(t, s)
}

// TestWireWaitClassification: parked inside a call while own wire
// traffic flies is WireWait; parked without traffic is SerWait.
func TestWireWaitClassification(t *testing.T) {
	s := synthetic(Options{Window: 100 * time.Microsecond}, func(tr *trace.Tracer) {
		r0 := tr.Track(trace.GroupHost, 1, "rank0")
		nic := tr.Track(trace.GroupNIC, 0, "nic0")
		r0.Span("kernel", "park", us(10), us(90), trace.Args{Peer: trace.NoPeer})
		r0.Span("mpi", "Wait", us(0), us(100), trace.None)
		nic.Span("wire", "xfer", us(20), us(60), trace.Args{Peer: 1, Size: 1 << 20, ID: 1})
	})
	c := s.Windows[0].Cells[0]
	if c.WireWait != 40*time.Microsecond {
		t.Errorf("wire wait %v, want 40µs", c.WireWait)
	}
	if c.SerWait != 40*time.Microsecond {
		t.Errorf("ser wait %v, want 40µs", c.SerWait)
	}
	if c.LibActive != 20*time.Microsecond {
		t.Errorf("lib active %v, want 20µs", c.LibActive)
	}
	checkConservation(t, s)
}

// TestPhaseDetection: a two-rank synthetic alternation produces
// compute/exchange phases at the call boundaries.
func TestPhaseDetection(t *testing.T) {
	s := synthetic(Options{Window: 50 * time.Microsecond}, func(tr *trace.Tracer) {
		r0 := tr.Track(trace.GroupHost, 1, "rank0")
		r1 := tr.Track(trace.GroupHost, 2, "rank1")
		for _, r := range []*trace.Track{r0, r1} {
			r.Span("kernel", "compute", us(0), us(100), trace.None)
			r.Span("mpi", "Sendrecv", us(100), us(150), trace.None)
			r.Span("kernel", "compute", us(150), us(250), trace.None)
		}
	})
	want := []struct {
		kind       string
		start, end time.Duration
	}{
		{"compute", 0, 100 * time.Microsecond},
		{"exchange", 100 * time.Microsecond, 150 * time.Microsecond},
		{"compute", 150 * time.Microsecond, 250 * time.Microsecond},
	}
	if len(s.Phases) != len(want) {
		t.Fatalf("got %d phases (%+v), want %d", len(s.Phases), s.Phases, len(want))
	}
	for i, w := range want {
		ph := s.Phases[i]
		if ph.Kind != w.kind || ph.Start != w.start || ph.End != w.end {
			t.Errorf("phase %d = %s [%v,%v), want %s [%v,%v)",
				i, ph.Kind, ph.Start, ph.End, w.kind, w.start, w.end)
		}
	}
	checkConservation(t, s)
}

// TestEmptyAnalyzer: no records at all yields an empty, well-formed
// snapshot.
func TestEmptyAnalyzer(t *testing.T) {
	a := New(Options{})
	a.Finalize(0)
	s := a.Snapshot()
	if len(s.Windows) != 0 || len(s.Phases) != 0 || s.Duration != 0 {
		t.Errorf("empty analyzer produced %+v", s)
	}
	if err := a.Err(); err != nil {
		t.Errorf("empty analyzer error: %v", err)
	}
}

// TestProgressAgentExcluded: dotted track names feed the replay but
// not the per-rank cells.
func TestProgressAgentExcluded(t *testing.T) {
	s := synthetic(Options{}, func(tr *trace.Tracer) {
		tr.Track(trace.GroupHost, 1, "rank0").Span("kernel", "compute", us(0), us(100), trace.None)
		tr.Track(trace.GroupHost, 2, "rank0.progress").Span("kernel", "compute", us(0), us(100), trace.None)
	})
	if len(s.Ranks) != 1 || s.Ranks[0] != 0 {
		t.Fatalf("ranks = %v, want [0]", s.Ranks)
	}
}

// TestMinMetric exercises the assertion helper's scoping rules.
func TestMinMetric(t *testing.T) {
	s := synthetic(Options{Window: 100 * time.Microsecond}, func(tr *trace.Tracer) {
		r0 := tr.Track(trace.GroupHost, 1, "rank0")
		r0.Span("kernel", "compute", us(0), us(100), trace.None)
		r0.Span("mpi", "Wait", us(100), us(200), trace.None)
	})
	v, n, err := s.MinMetric("par_eff", 0, 0, "")
	if err != nil || n != 2 || v != 0 {
		t.Errorf("min par_eff over all = (%v,%d,%v), want (0,2,nil)", v, n, err)
	}
	v, n, err = s.MinMetric("par_eff", 0, 100*time.Microsecond, "")
	if err != nil || n != 1 || v != 1 {
		t.Errorf("min par_eff first window = (%v,%d,%v), want (1,1,nil)", v, n, err)
	}
	if _, n, err = s.MinMetric("par_eff", 0, 0, "exchange"); err != nil || n != 1 {
		t.Errorf("exchange-phase scope selected %d slices (%v), want 1", n, err)
	}
	if _, _, err = s.MinMetric("nope", 0, 0, ""); err == nil {
		t.Error("unknown metric must error")
	}
}

// TestCSVDeterminism: two identical runs render byte-identical CSV.
func TestCSVDeterminism(t *testing.T) {
	render := func() []byte {
		w := workloads()[0]
		a, _, _ := runAnalyzed(t, w.cfg, Options{}, w.body)
		var buf bytes.Buffer
		if err := a.Snapshot().WriteCSV(&buf); err != nil {
			t.Fatalf("WriteCSV: %v", err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Error("CSV output is not deterministic across identical runs")
	}
	head := string(a[:120])
	if !strings.Contains(head, "ovlp time-resolved metrics v1") {
		t.Errorf("CSV header missing: %q", head)
	}
}

// TestFromInputMatchesLiveSink: the offline bridge over a
// FromTracer input reproduces the live sink's snapshot.
func TestFromInputMatchesLiveSink(t *testing.T) {
	w := workloads()[1]
	a, res, tr := runAnalyzed(t, w.cfg, Options{}, w.body)
	live := a.Snapshot()
	in := profile.FromTracer(tr, res.Calib, res.Reports)
	off, err := FromInput(in, Options{})
	if err != nil {
		t.Fatalf("FromInput: %v", err)
	}
	var lb, ob bytes.Buffer
	if err := live.WriteCSV(&lb); err != nil {
		t.Fatal(err)
	}
	if err := off.WriteCSV(&ob); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(lb.Bytes(), ob.Bytes()) {
		t.Error("offline FromInput snapshot differs from live sink snapshot")
	}
}
