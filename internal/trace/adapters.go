package trace

import (
	"fmt"

	"ovlp/internal/overlap"
	"ovlp/internal/vtime"
)

// KernelObserver returns a vtime.Observer that renders the kernel's
// scheduling activity onto each proc's host track. Because execution
// between blocking points consumes no virtual time, "running" spans
// would all be zero-width; what carries duration — and what the
// observer draws — are the blocked intervals: "compute" spans while a
// proc sits in Compute and "park" spans (tagged with the blocking call
// site) while it waits to be unparked. Deadlock diagnoses become one
// instant per stuck proc plus a kernel.deadlocks counter.
//
// Observer emissions are never charged to the simulated hosts: the
// kernel's own bookkeeping is outside the instrumented libraries,
// whose tracing cost is modelled at their emission sites instead.
// Returns nil for a nil tracer (and vtime ignores a nil observer).
func (t *Tracer) KernelObserver() vtime.Observer {
	if t == nil {
		return nil
	}
	return &kernelObserver{t: t, open: make(map[int]openBlock)}
}

type openBlock struct {
	since vtime.Time
	state string
	where string
}

type kernelObserver struct {
	t    *Tracer
	open map[int]openBlock // proc id -> block in progress
}

func (o *kernelObserver) track(p *vtime.Proc) *Track {
	return o.t.Track(GroupHost, p.ID(), p.Name())
}

func (o *kernelObserver) ProcBlocked(p *vtime.Proc, state, where string) {
	o.track(p) // ensure the track exists even if the span ends up zero-width
	o.open[p.ID()] = openBlock{since: p.Now(), state: state, where: where}
}

func (o *kernelObserver) ProcResumed(p *vtime.Proc) {
	b, ok := o.open[p.ID()]
	if !ok {
		// First dispatch after Spawn: mark the birth so an otherwise
		// empty track still shows when the proc existed.
		o.track(p).Instant("kernel", "spawn", p.Now(), None)
		return
	}
	delete(o.open, p.ID())
	if p.Now() == b.since {
		return // zero-width block (e.g. Yield): noise, not signal
	}
	name := "compute"
	a := None
	if b.state == "parked" {
		name = "park"
		a.Detail = b.where
	}
	o.track(p).Span("kernel", name, b.since, p.Now(), a)
}

// ProcUnparked (the vtime.EdgeObserver extension) marks each effective
// wake-up as an "unpark" instant on the woken proc's track, with Peer
// set to the waker's proc id when a proc (rather than a timer or a
// fabric delivery) released it — the cross-timeline edges the
// critical-path walker follows.
func (o *kernelObserver) ProcUnparked(p *vtime.Proc, by *vtime.Proc) {
	a := None
	if by != nil {
		a.Peer = by.ID()
	}
	o.track(p).Instant("kernel", "unpark", p.Now(), a)
}

func (o *kernelObserver) ProcDone(p *vtime.Proc) {
	o.track(p).Instant("kernel", "done", p.Now(), None)
}

func (o *kernelObserver) Deadlock(e *vtime.DeadlockError) {
	o.t.Metrics().Counter("kernel.deadlocks").Inc()
	for _, d := range e.Procs {
		tk := o.t.Track(GroupHost, d.ID, d.Name)
		tk.Instant("kernel", "deadlock", e.Now, Args{
			Peer:   NoPeer,
			Detail: fmt.Sprintf("%s: %s in %s since %v", e.Reason, d.State, d.Where, d.Since),
		})
	}
}

// OverlapSink adapts a host track to the overlap monitor's Sink
// interface: transfer begin/end approximations become instants,
// hardware-stamped exact transfers become spans over their physical
// interval, and region transitions become instants — all in category
// "overlap". Call enter/exit events are skipped: the communication
// libraries emit richer named call spans for the same intervals.
//
// The origin is the virtual time of the monitor clock's zero, so
// event stamps (durations since process origin) land on the shared
// timeline. regionName, when non-nil, resolves region indices to
// their registered names so push/pop instants carry the name in
// detail and exported traces stay self-describing offline.
func OverlapSink(tk *Track, origin vtime.Time, regionName func(int32) string) overlap.Sink {
	if tk == nil {
		return nil
	}
	return &overlapSink{tk: tk, origin: origin, regionName: regionName}
}

type overlapSink struct {
	tk         *Track
	origin     vtime.Time
	regionName func(int32) string
}

func (s *overlapSink) region(idx int32) string {
	if s.regionName == nil {
		return ""
	}
	return s.regionName(idx)
}

func (s *overlapSink) OverlapEvent(e overlap.Event) {
	at := s.origin.Add(e.Stamp)
	switch e.Kind {
	case overlap.KindXferBegin:
		s.tk.Instant("overlap", "xfer-begin", at, Args{Peer: NoPeer, ID: e.ID, Size: e.Size})
	case overlap.KindXferEnd:
		s.tk.Instant("overlap", "xfer-end", at, Args{Peer: NoPeer, ID: e.ID, Size: e.Size})
	case overlap.KindXferExact:
		s.tk.Span("overlap", "xfer-exact", s.origin.Add(e.Start), s.origin.Add(e.End),
			Args{Peer: NoPeer, ID: e.ID, Size: e.Size})
	case overlap.KindRegionPush:
		s.tk.Instant("overlap", "region-push", at, Args{Peer: NoPeer, ID: uint64(e.Region), Detail: s.region(e.Region)})
	case overlap.KindRegionPop:
		s.tk.Instant("overlap", "region-pop", at, Args{Peer: NoPeer, ID: uint64(e.Region), Detail: s.region(e.Region)})
	case overlap.KindEpochCut:
		s.tk.Instant("overlap", "epoch-cut", at, Args{Peer: NoPeer})
	}
}
