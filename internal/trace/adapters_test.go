package trace

import (
	"errors"
	"strings"
	"testing"
	"time"

	"ovlp/internal/overlap"
	"ovlp/internal/vtime"
)

func TestKernelObserverSpans(t *testing.T) {
	tr := New(Options{})
	sim := vtime.NewSim()
	sim.SetObserver(tr.KernelObserver())
	var p *vtime.Proc
	p = sim.Spawn("worker", func(p *vtime.Proc) {
		p.Compute(10 * time.Microsecond)
		p.Park("test.park")
	})
	sim.After(30*time.Microsecond, func() { p.Unpark() })
	sim.Run()

	tracks := tr.Tracks()
	if len(tracks) != 1 {
		t.Fatalf("want one host track, got %d", len(tracks))
	}
	tk := tracks[0]
	if tk.Group() != GroupHost || tk.Name() != "worker" {
		t.Errorf("track identity wrong: %v %q", tk.Group(), tk.Name())
	}
	recs := tk.Recs()
	var names []string
	for _, r := range recs {
		names = append(names, r.Name)
	}
	// The unpark instant logs at wake time (t=30µs), before the park
	// span record, which is only emitted once the span closes.
	want := []string{"spawn", "compute", "unpark", "park", "done"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("record sequence %v, want %v", names, want)
	}
	comp, unpark, park := recs[1], recs[2], recs[3]
	if comp.Start != us(0) || comp.End() != us(10) {
		t.Errorf("compute span [%v,%v), want [0,10µs)", comp.Start, comp.End())
	}
	if unpark.Start != us(30) || unpark.Args.Peer != NoPeer {
		t.Errorf("unpark instant wrong (want t=30µs, no peer: woken from event context): %+v", unpark)
	}
	if park.Start != us(10) || park.End() != us(30) || park.Args.Detail != "test.park" {
		t.Errorf("park span wrong: %+v", park)
	}
}

func TestKernelObserverSkipsZeroWidthBlocks(t *testing.T) {
	tr := New(Options{})
	sim := vtime.NewSim()
	sim.SetObserver(tr.KernelObserver())
	sim.Spawn("y", func(p *vtime.Proc) {
		p.Yield() // zero-duration block: noise, not signal
		p.Compute(time.Microsecond)
	})
	sim.Run()
	for _, r := range tr.Tracks()[0].Recs() {
		if r.Name == "compute" && r.Dur == 0 {
			t.Errorf("zero-width block emitted: %+v", r)
		}
	}
}

func TestKernelObserverDeadlock(t *testing.T) {
	tr := New(Options{})
	sim := vtime.NewSim()
	sim.SetObserver(tr.KernelObserver())
	sim.Spawn("stuck", func(p *vtime.Proc) {
		p.Park("never.unparked")
	})
	_, err := sim.RunE()
	var de *vtime.DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("want DeadlockError, got %v", err)
	}
	if got := tr.Metrics().Counter("kernel.deadlocks").Value(); got != 1 {
		t.Errorf("kernel.deadlocks = %d, want 1", got)
	}
	var found bool
	for _, r := range tr.Tracks()[0].Recs() {
		if r.Name == "deadlock" && strings.Contains(r.Args.Detail, "never.unparked") {
			found = true
		}
	}
	if !found {
		t.Error("no deadlock instant naming the blocking site")
	}
}

func TestOverlapSinkMapping(t *testing.T) {
	tr := New(Options{})
	tk := tr.Track(GroupHost, 0, "rank0")
	s := OverlapSink(tk, us(100), func(idx int32) string { return "r" }) // origin: monitor clock zero at t=100µs
	s.OverlapEvent(overlap.Event{Kind: overlap.KindRegionPush, Region: 3, Stamp: 0})
	s.OverlapEvent(overlap.Event{Kind: overlap.KindXferBegin, ID: 9, Size: 4096, Stamp: time.Microsecond})
	s.OverlapEvent(overlap.Event{Kind: overlap.KindXferEnd, ID: 9, Stamp: 5 * time.Microsecond})
	s.OverlapEvent(overlap.Event{Kind: overlap.KindXferExact, ID: 10, Size: 64,
		Start: 2 * time.Microsecond, End: 4 * time.Microsecond})
	s.OverlapEvent(overlap.Event{Kind: overlap.KindCallEnter, Stamp: 6 * time.Microsecond})

	recs := tk.Recs()
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4 (call events skipped)", len(recs))
	}
	if recs[0].Name != "region-push" || recs[0].Args.ID != 3 || recs[0].Start != us(100) {
		t.Errorf("region-push wrong: %+v", recs[0])
	}
	if recs[1].Name != "xfer-begin" || recs[1].Args.Size != 4096 || recs[1].Start != us(101) {
		t.Errorf("xfer-begin wrong: %+v", recs[1])
	}
	exact := recs[3]
	if exact.Name != "xfer-exact" || exact.Start != us(102) || exact.End() != us(104) {
		t.Errorf("xfer-exact must span the physical interval offset by origin: %+v", exact)
	}
}
