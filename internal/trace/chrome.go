package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"ovlp/internal/vtime"
)

// WriteChrome exports the tracer as Chrome trace-event JSON (the
// "JSON Object Format" of the trace-event spec), loadable in Perfetto
// and chrome://tracing. Each Group becomes a process, each Track a
// thread; spans are "X" complete events, instants "i" events, and the
// metrics snapshot rides along as a top-level "metrics" object (extra
// top-level keys are explicitly legal per the spec).
//
// The encoder is hand-written rather than encoding/json because
// byte-identical output is a contract here: field order is fixed,
// nothing iterates a map, and microsecond timestamps are formatted
// from integer nanoseconds (never through a float), so a fixed-seed
// run re-exports to the same bytes.
func (t *Tracer) WriteChrome(w io.Writer) error {
	var b bytes.Buffer
	b.WriteString(`{"displayTimeUnit":"ns","traceEvents":[`)
	first := true
	sep := func() {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteByte('\n')
	}

	// Metadata: name each process once, then each thread, with a sort
	// index so Perfetto orders tracks by id rather than by first event.
	seenGroup := make(map[Group]bool)
	for _, tk := range t.Tracks() {
		if !seenGroup[tk.group] {
			seenGroup[tk.group] = true
			sep()
			fmt.Fprintf(&b, `{"name":"process_name","ph":"M","pid":%d,"args":{"name":%s}}`,
				int(tk.group), quote(tk.group.String()))
			sep()
			fmt.Fprintf(&b, `{"name":"process_sort_index","ph":"M","pid":%d,"args":{"sort_index":%d}}`,
				int(tk.group), int(tk.group))
		}
		sep()
		fmt.Fprintf(&b, `{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%s}}`,
			int(tk.group), tk.id+1, quote(tk.name))
		sep()
		fmt.Fprintf(&b, `{"name":"thread_sort_index","ph":"M","pid":%d,"tid":%d,"args":{"sort_index":%d}}`,
			int(tk.group), tk.id+1, tk.id)
	}

	for _, tk := range t.Tracks() {
		for _, r := range tk.Recs() {
			sep()
			if r.Instant() {
				fmt.Fprintf(&b, `{"name":%s,"cat":%s,"ph":"i","s":"t","ts":%s,"pid":%d,"tid":%d`,
					quote(r.Name), quote(r.Cat), usec(r.Start), int(tk.group), tk.id+1)
			} else {
				fmt.Fprintf(&b, `{"name":%s,"cat":%s,"ph":"X","ts":%s,"dur":%s,"pid":%d,"tid":%d`,
					quote(r.Name), quote(r.Cat), usec(r.Start), usec(vtime.Time(r.Dur)), int(tk.group), tk.id+1)
			}
			writeArgs(&b, r.Args)
			b.WriteByte('}')
		}
	}

	b.WriteString("\n]")
	if snap := t.Metrics().Snapshot(); !snap.Empty() {
		b.WriteString(`,"metrics":`)
		snap.writeJSON(&b)
	}
	if t.opts.Generator != "" {
		b.WriteString(`,"generator":`)
		b.WriteString(quote(t.opts.Generator))
	}
	if d := t.opts.ClockDomain; d != "" && d != "virtual" {
		// Only non-virtual domains are stamped: absence means virtual,
		// and virtual exports stay byte-identical (golden traces).
		b.WriteString(`,"clockDomain":`)
		b.WriteString(quote(d))
	}
	b.WriteString("}\n")
	_, err := w.Write(b.Bytes())
	return err
}

// usec renders a nanosecond virtual time as the spec's microsecond
// timestamp, as an exact decimal JSON number (never a float round-trip).
func usec(t vtime.Time) string {
	ns := int64(t)
	if ns < 0 {
		// Spans never start before t=0 in virtual time; guard anyway so a
		// bug yields a readable (still valid JSON) value.
		return fmt.Sprintf("-%d.%03d", -ns/1000, (-ns)%1000)
	}
	return fmt.Sprintf("%d.%03d", ns/1000, ns%1000)
}

// writeArgs appends the record's non-absent args as `,"args":{...}`,
// in fixed field order; it writes nothing when every field is absent.
func writeArgs(b *bytes.Buffer, a Args) {
	any := false
	field := func(k, v string) {
		if any {
			b.WriteByte(',')
		} else {
			b.WriteString(`,"args":{`)
			any = true
		}
		b.WriteByte('"')
		b.WriteString(k)
		b.WriteString(`":`)
		b.WriteString(v)
	}
	if a.Peer >= 0 {
		field("peer", strconv.Itoa(a.Peer))
	}
	if a.Size > 0 {
		field("size", strconv.FormatInt(a.Size, 10))
	}
	if a.ID != 0 {
		field("id", strconv.FormatUint(a.ID, 10))
	}
	if a.Detail != "" {
		field("detail", quote(a.Detail))
	}
	if a.Phase != "" {
		field("phase", quote(a.Phase))
	}
	if any {
		b.WriteByte('}')
	}
}

// WriteJSON encodes the snapshot as the trace file's "metrics" block —
// exported so tools that merge trace files (cmd/tracecat) can re-emit
// a combined snapshot in the same deterministic encoding.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	var b bytes.Buffer
	s.writeJSON(&b)
	_, err := w.Write(b.Bytes())
	return err
}

// writeJSON encodes the snapshot with fixed field order.
func (s *Snapshot) writeJSON(b *bytes.Buffer) {
	b.WriteString(`{"counters":[`)
	for i, c := range s.Counters {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(b, `{"name":%s,"value":%d}`, quote(c.Name), c.Value)
	}
	b.WriteString(`],"gauges":[`)
	for i, g := range s.Gauges {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(b, `{"name":%s,"value":%d,"max":%d}`, quote(g.Name), g.Value, g.Max)
	}
	b.WriteString(`],"histograms":[`)
	for i, h := range s.Histograms {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(b, `{"name":%s,"bounds":`, quote(h.Name))
		writeInts(b, h.Bounds)
		b.WriteString(`,"buckets":`)
		writeInts(b, h.Buckets)
		fmt.Fprintf(b, `,"count":%d,"sum":%d,"min":%d,"max":%d}`, h.Count, h.Sum, h.Min, h.Max)
	}
	b.WriteString(`]}`)
}

func writeInts(b *bytes.Buffer, vs []int64) {
	b.WriteByte('[')
	for i, v := range vs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(b, "%d", v)
	}
	b.WriteByte(']')
}

// quote JSON-escapes a string. Trace names are ASCII identifiers in
// practice, but the exporter must never emit invalid JSON; Go string
// marshalling is deterministic for a given input.
func quote(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}
