package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"ovlp/internal/vtime"
)

// buildSample populates a tracer the way the stack does: host call
// spans with args, NIC wire spans, instants, and metrics.
func buildSample() *Tracer {
	tr := New(Options{})
	r0 := tr.Track(GroupHost, 0, "rank0")
	r0.Span("mpi", "Isend", us(0), us(3), Args{Peer: 1, Size: 1 << 20, ID: 1})
	r0.Instant("overlap", "xfer-begin", us(1), Args{Peer: NoPeer, ID: 1, Size: 1 << 20})
	r0.Span("kernel", "compute", us(3), us(10), None)
	nic := tr.Track(GroupNIC, 0, "nic0")
	nic.Span("wire", "xfer", us(2), us(9), Args{Peer: 1, Size: 1 << 20, ID: 1})
	nic.Instant("fault", "drop", us(4), Args{Peer: NoPeer, Detail: `quoted "detail"`})
	m := tr.Metrics()
	m.Counter("fabric.transfers").Inc()
	m.Gauge("overlap.drain_batch").Set(40)
	m.Histogram("fabric.xfer_size", []int64{1024}).Observe(1 << 20)
	return tr
}

// chromeDoc mirrors the trace-event JSON object format for decoding.
type chromeDoc struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string          `json:"name"`
		Cat  string          `json:"cat"`
		Ph   string          `json:"ph"`
		S    string          `json:"s"`
		Ts   *float64        `json:"ts"`
		Dur  *float64        `json:"dur"`
		Pid  *int            `json:"pid"`
		Tid  *int            `json:"tid"`
		Args json.RawMessage `json:"args"`
	} `json:"traceEvents"`
	Metrics *struct {
		Counters []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"counters"`
		Gauges []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
			Max   int64  `json:"max"`
		} `json:"gauges"`
		Histograms []struct {
			Name    string  `json:"name"`
			Bounds  []int64 `json:"bounds"`
			Buckets []int64 `json:"buckets"`
			Count   int64   `json:"count"`
		} `json:"histograms"`
	} `json:"metrics"`
}

func exportDoc(t *testing.T, tr *Tracer) (chromeDoc, string) {
	t.Helper()
	var b bytes.Buffer
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("exporter produced invalid JSON: %v\n%s", err, b.String())
	}
	return doc, b.String()
}

func TestWriteChromeValid(t *testing.T) {
	doc, raw := exportDoc(t, buildSample())
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var meta, spans, instants int
	for _, e := range doc.TraceEvents {
		if e.Name == "" || e.Ph == "" || e.Pid == nil {
			t.Fatalf("event missing required field: %+v", e)
		}
		switch e.Ph {
		case "M":
			meta++
		case "X":
			spans++
			if e.Ts == nil || e.Dur == nil || e.Cat == "" {
				t.Fatalf("span missing ts/dur/cat: %+v", e)
			}
		case "i":
			instants++
			if e.S != "t" || e.Ts == nil {
				t.Fatalf("instant missing s/ts: %+v", e)
			}
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	// 2 tracks in 2 groups: 2 process_name + 2 process_sort_index +
	// 2 thread_name + 2 thread_sort_index.
	if meta != 8 {
		t.Errorf("metadata events = %d, want 8", meta)
	}
	if spans != 3 || instants != 2 {
		t.Errorf("spans/instants = %d/%d, want 3/2", spans, instants)
	}
	// Args encoding: absent Peer must not appear, present args must.
	if !strings.Contains(raw, `"args":{"peer":1,"size":1048576,"id":1}`) {
		t.Errorf("span args not encoded in fixed order:\n%s", raw)
	}
	if strings.Contains(raw, `"peer":-1`) {
		t.Error("NoPeer must be omitted from args")
	}
	if !strings.Contains(raw, `"detail":"quoted \"detail\""`) {
		t.Error("detail string not JSON-escaped")
	}
	// The 3µs span renders as exact decimal microseconds.
	if !strings.Contains(raw, `"ts":0.000,"dur":3.000`) {
		t.Errorf("span timestamps not exact-decimal:\n%s", raw)
	}
	m := doc.Metrics
	if m == nil || len(m.Counters) != 1 || m.Counters[0].Name != "fabric.transfers" || m.Counters[0].Value != 1 {
		t.Fatalf("metrics block wrong: %+v", m)
	}
	if len(m.Gauges) != 1 || m.Gauges[0].Max != 40 {
		t.Errorf("gauges wrong: %+v", m.Gauges)
	}
	if len(m.Histograms) != 1 || m.Histograms[0].Count != 1 || len(m.Histograms[0].Buckets) != 2 {
		t.Errorf("histograms wrong: %+v", m.Histograms)
	}
}

func TestWriteChromeDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := buildSample().WriteChrome(&a); err != nil {
		t.Fatal(err)
	}
	if err := buildSample().WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("identical tracers must export byte-identical files")
	}
	// Re-export of the same tracer must also be stable (Recs drains the
	// hot ring into the cold store; a second pass reads the cold store).
	tr := buildSample()
	var c, d bytes.Buffer
	if err := tr.WriteChrome(&c); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteChrome(&d); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c.Bytes(), d.Bytes()) {
		t.Error("re-exporting one tracer must be byte-identical")
	}
}

func TestUsecFormat(t *testing.T) {
	cases := map[vtime.Time]string{
		0:                                   "0.000",
		vtime.Time(time.Microsecond):        "1.000",
		vtime.Time(1500):                    "1.500",
		vtime.Time(7):                       "0.007",
		vtime.Time(2*time.Millisecond + 42): "2000.042",
		vtime.Time(-1500):                   "-1.500",
	}
	for in, want := range cases {
		if got := usec(in); got != want {
			t.Errorf("usec(%d) = %q, want %q", int64(in), got, want)
		}
	}
}

func TestWriteJSONSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(2)
	var b bytes.Buffer
	if err := r.Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(b.Bytes(), &decoded); err != nil {
		t.Fatalf("WriteJSON invalid: %v\n%s", err, b.String())
	}
}
