package trace

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Registry is a virtual-time metrics registry: counters, gauges and
// histograms keyed by name. Like the tracer it is single-writer under
// the simulator's coroutine discipline, and a nil *Registry ignores
// all calls so uninstrumented runs pay only a nil check.
//
// Snapshots are deterministic: instruments are reported sorted by
// name, with fixed-order fields, so a metrics block embedded in a
// trace file does not perturb byte-identical output.
type Registry struct {
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds (ascending) on first use. Later calls may pass
// nil bounds to reuse the existing instrument.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{bounds: bounds, buckets: make([]int64, len(bounds)+1)}
		r.histograms[name] = h
	}
	return h
}

// Counter is a monotonically increasing total.
type Counter struct{ v int64 }

// Add increases the counter; negative deltas panic.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	if d < 0 {
		panic("trace: counter decreased")
	}
	c.v += d
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a sampled level that also tracks its high-water mark —
// the queue-depth instrument the paper's circular event queue needs.
type Gauge struct {
	v, max int64
	set    bool
}

// Set records the current level and updates the high-water mark.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	if !g.set || v > g.max {
		g.max = v
	}
	g.set = true
	g.v = v
}

// Value returns the last recorded level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Max returns the high-water mark.
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max
}

// Histogram counts observations into buckets by upper bound, tracking
// count, sum, min and max exactly.
type Histogram struct {
	bounds  []int64
	buckets []int64 // len(bounds)+1; last is overflow
	count   int64
	sum     int64
	min     int64
	max     int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.buckets[i]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Snapshot is a point-in-time copy of every instrument, ordered by
// name, ready for deterministic encoding.
type Snapshot struct {
	Counters   []CounterSnap
	Gauges     []GaugeSnap
	Histograms []HistogramSnap
}

// CounterSnap is one counter in a snapshot.
type CounterSnap struct {
	Name  string
	Value int64
}

// GaugeSnap is one gauge in a snapshot.
type GaugeSnap struct {
	Name  string
	Value int64
	Max   int64
}

// HistogramSnap is one histogram in a snapshot.
type HistogramSnap struct {
	Name    string
	Bounds  []int64
	Buckets []int64
	Count   int64
	Sum     int64
	Min     int64
	Max     int64
}

// Snapshot copies every instrument, sorted by name. A nil registry
// yields a nil snapshot.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	s := &Snapshot{}
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterSnap{Name: name, Value: c.v})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeSnap{Name: name, Value: g.v, Max: g.max})
	}
	for name, h := range r.histograms {
		s.Histograms = append(s.Histograms, HistogramSnap{
			Name:    name,
			Bounds:  append([]int64(nil), h.bounds...),
			Buckets: append([]int64(nil), h.buckets...),
			Count:   h.count,
			Sum:     h.sum,
			Min:     h.min,
			Max:     h.max,
		})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// Empty reports whether the snapshot has no instruments at all.
func (s *Snapshot) Empty() bool {
	return s == nil || len(s.Counters)+len(s.Gauges)+len(s.Histograms) == 0
}

// WriteText renders the snapshot as an aligned plain-text table, the
// human side of the -metrics flag. Names ending in "_ns" render as
// durations for readability.
func (s *Snapshot) WriteText(w io.Writer) error {
	if s.Empty() {
		_, err := fmt.Fprintln(w, "metrics: (none)")
		return err
	}
	wide := 0
	for _, c := range s.Counters {
		wide = maxInt(wide, len(c.Name))
	}
	for _, g := range s.Gauges {
		wide = maxInt(wide, len(g.Name))
	}
	for _, h := range s.Histograms {
		wide = maxInt(wide, len(h.Name))
	}
	for _, c := range s.Counters {
		if _, err := fmt.Fprintf(w, "%-*s  %s\n", wide, c.Name, fmtVal(c.Name, c.Value)); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if _, err := fmt.Fprintf(w, "%-*s  %s (max %s)\n", wide, g.Name,
			fmtVal(g.Name, g.Value), fmtVal(g.Name, g.Max)); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if h.Count == 0 {
			if _, err := fmt.Fprintf(w, "%-*s  (no observations)\n", wide, h.Name); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%-*s  count %d  sum %s  min %s  max %s\n", wide, h.Name,
			h.Count, fmtVal(h.Name, h.Sum), fmtVal(h.Name, h.Min), fmtVal(h.Name, h.Max)); err != nil {
			return err
		}
	}
	return nil
}

// fmtVal renders _ns-suffixed metrics as durations.
func fmtVal(name string, v int64) string {
	if len(name) > 3 && name[len(name)-3:] == "_ns" {
		return time.Duration(v).String()
	}
	return fmt.Sprintf("%d", v)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
