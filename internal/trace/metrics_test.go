package trace

import (
	"strings"
	"testing"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if r.Counter("a") != c {
		t.Error("same name must return the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Error("negative Add must panic")
		}
	}()
	c.Add(-1)
}

func TestGaugeHighWater(t *testing.T) {
	g := NewRegistry().Gauge("depth")
	for _, v := range []int64{3, 9, 2} {
		g.Set(v)
	}
	if g.Value() != 2 || g.Max() != 9 {
		t.Errorf("gauge value=%d max=%d, want 2/9", g.Value(), g.Max())
	}
	// Max must track even when every sample is negative.
	g2 := NewRegistry().Gauge("neg")
	g2.Set(-5)
	g2.Set(-7)
	if g2.Max() != -5 {
		t.Errorf("negative-only gauge max = %d, want -5", g2.Max())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sz", []int64{10, 100})
	for _, v := range []int64{5, 10, 11, 100, 1000} {
		h.Observe(v)
	}
	if r.Histogram("sz", nil) != h {
		t.Error("same name must return the same histogram")
	}
	s := r.Snapshot()
	if len(s.Histograms) != 1 {
		t.Fatalf("want one histogram, got %d", len(s.Histograms))
	}
	snap := s.Histograms[0]
	want := []int64{2, 2, 1} // <=10, <=100, overflow
	for i, b := range snap.Buckets {
		if b != want[i] {
			t.Fatalf("buckets = %v, want %v", snap.Buckets, want)
		}
	}
	if snap.Count != 5 || snap.Sum != 1126 || snap.Min != 5 || snap.Max != 1000 {
		t.Errorf("histogram stats wrong: %+v", snap)
	}
}

func TestSnapshotSorted(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		r.Counter(n).Inc()
		r.Gauge(n + ".g").Set(1)
	}
	s := r.Snapshot()
	for i := 1; i < len(s.Counters); i++ {
		if s.Counters[i-1].Name >= s.Counters[i].Name {
			t.Fatalf("counters unsorted: %v", s.Counters)
		}
	}
	for i := 1; i < len(s.Gauges); i++ {
		if s.Gauges[i-1].Name >= s.Gauges[i].Name {
			t.Fatalf("gauges unsorted: %v", s.Gauges)
		}
	}
	if s.Empty() {
		t.Error("populated snapshot must not be Empty")
	}
	if !NewRegistry().Snapshot().Empty() {
		t.Error("fresh registry snapshot must be Empty")
	}
	var nilReg *Registry
	if nilReg.Snapshot() != nil {
		t.Error("nil registry must snapshot to nil")
	}
}

func TestWriteTextDurations(t *testing.T) {
	r := NewRegistry()
	r.Counter("run.xfer_ns").Add(1500)
	r.Counter("plain").Add(7)
	var sb strings.Builder
	if err := r.Snapshot().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "1.5µs") {
		t.Errorf("_ns metric not rendered as duration:\n%s", out)
	}
	if !strings.Contains(out, "plain") || !strings.Contains(out, "7") {
		t.Errorf("plain counter missing:\n%s", out)
	}
}
