// Package trace is the deterministic structured-tracing and metrics
// subsystem spanning the whole simulated stack: every layer — kernel,
// fabric, reliability, communication libraries, overlap
// instrumentation — emits typed spans and instants into per-track
// rings, and the result exports to Chrome trace-event JSON (loadable
// in Perfetto) alongside a virtual-time metrics registry.
//
// Determinism is the design constraint everything else bends around:
// all time-stamps come from the virtual clock, tracks are kept in
// creation order, records in emission order, and the exporter encodes
// with a fixed field order — so a fixed-seed run produces a
// byte-identical trace file every time, and tests can assert on the
// bytes.
//
// The per-track ring mirrors the overlap package's event queue: a
// fixed-size hot buffer that spills in batches to a cold store when
// full, so the steady-state emission path never allocates. Under the
// simulator's coroutine discipline exactly one goroutine runs at a
// time, so the ring needs no locks; the same single-writer-per-track
// layout is what a lock-free ring gives an instrumented real system.
//
// Tracing overhead is itself measurable: emissions that originate
// inside an instrumented library are charged to the owning rank
// through the overlap monitor's existing Config.Charge path (see
// mpi.InstrumentConfig.ModelCost), so the paper's overhead study
// extends to the tracer.
package trace

import (
	"fmt"
	"time"

	"ovlp/internal/vtime"
)

// Group is the top-level container a track belongs to; the Chrome
// exporter renders each group as one "process".
type Group int

const (
	// GroupHost holds one track per simulated proc (ranks, progress
	// agents): kernel scheduling spans, library call spans, overlap
	// instants.
	GroupHost Group = 1
	// GroupNIC holds one track per node's NIC: ground-truth wire spans,
	// fault-injection instants, reliable-delivery instants.
	GroupNIC Group = 2
)

func (g Group) String() string {
	switch g {
	case GroupHost:
		return "hosts"
	case GroupNIC:
		return "nic"
	}
	return "invalid"
}

// Args are the optional typed tags of a record. Absent fields are not
// exported: Peer is emitted when >= 0 (pass NoPeer for none — the zero
// value would read as rank 0), Size when > 0, ID when != 0, Detail and
// Phase when non-empty.
type Args struct {
	Peer   int
	Size   int64
	ID     uint64
	Detail string
	// Phase tags a wire span with the protocol phase that produced the
	// transfer ("eager", "pipelined-frag0", "pipelined-frag",
	// "direct-read", "put", ...), so offline analysis can attribute
	// non-overlapped time to the protocol choice without replaying the
	// library state machines.
	Phase string
}

// NoPeer marks the Peer field absent.
const NoPeer = -1

// None is the empty argument set.
var None = Args{Peer: NoPeer}

// Rec is one trace record: a complete span when Dur > 0, an instant
// otherwise. Records are fixed size so the ring never allocates after
// construction.
type Rec struct {
	Cat   string
	Name  string
	Start vtime.Time
	Dur   time.Duration
	Args  Args
}

// Instant reports whether the record is an instant rather than a span.
func (r Rec) Instant() bool { return r.Dur == 0 }

// End returns the record's end time (== Start for instants).
func (r Rec) End() vtime.Time { return r.Start.Add(r.Dur) }

// DefaultRingSize is the default per-track hot-buffer capacity.
const DefaultRingSize = 1024

// Options parameterizes a Tracer.
type Options struct {
	// RingSize is the per-track hot-buffer capacity; 0 means
	// DefaultRingSize.
	RingSize int
	// MetricsOnly disables span/instant retention, leaving only the
	// metrics registry active — the cheap mode behind a bare -metrics
	// flag. Streaming sinks (AddSink) still observe every record, so
	// incremental analyzers run without any ring memory being spent on
	// events nobody will export.
	MetricsOnly bool
	// Generator, when set, is stamped into exported trace files as a
	// top-level "generator" key — the producing binary's build identity
	// (cmdutil.Version). Left empty it adds nothing, so byte-stable
	// golden traces are unaffected unless a caller opts in.
	Generator string
	// ClockDomain names the clock the run's timestamps were read from
	// ("virtual", "real", "fake"). Non-virtual domains are stamped into
	// exported trace files as a top-level "clockDomain" key so offline
	// analysis knows the timestamps are wall-clock measurements, not
	// deterministic virtual time. Empty or "virtual" adds nothing —
	// virtual exports stay byte-identical to the pre-domain format, and
	// absence of the key means virtual. Usually set by cluster.RunE
	// (via SetClockDomain) from the run's backend rather than by hand.
	ClockDomain string
}

// Sink observes every record the moment it is emitted — a streaming
// tap on the trace, so incremental analyzers (internal/timeres) can
// consume the run live instead of re-parsing an exported file. Sinks
// run in simulation context under the coroutine discipline: exactly
// one emission at a time, records per track in emission order (which,
// because spans are logged at their end stamp, is non-decreasing end
// time per track).
type Sink interface {
	// TraceRec delivers one record from tk. The Rec is a value copy;
	// the sink must not retain pointers into the tracer.
	TraceRec(tk *Track, r Rec)
}

// Tracer owns the run's tracks and metrics registry. A nil *Tracer is
// valid and ignores all calls, so layers can be built with tracing
// unconditionally and run untraced at zero cost beyond a nil check.
type Tracer struct {
	opts   Options
	tracks []*Track
	index  map[trackKey]*Track
	reg    *Registry
	sinks  []Sink
}

type trackKey struct {
	group Group
	id    int
}

// New creates an empty tracer.
func New(opts Options) *Tracer {
	if opts.RingSize == 0 {
		opts.RingSize = DefaultRingSize
	}
	if opts.RingSize < 2 {
		panic("trace: ring size must be at least 2")
	}
	return &Tracer{
		opts:  opts,
		index: make(map[trackKey]*Track),
		reg:   NewRegistry(),
	}
}

// SetClockDomain stamps the clock domain of the run being traced (see
// Options.ClockDomain). Call before exporting; a nil tracer ignores
// the call.
func (t *Tracer) SetClockDomain(d string) {
	if t == nil {
		return
	}
	t.opts.ClockDomain = d
}

// ClockDomain returns the stamped clock domain; empty (or for a nil
// tracer) means virtual.
func (t *Tracer) ClockDomain() string {
	if t == nil {
		return ""
	}
	return t.opts.ClockDomain
}

// Metrics returns the tracer's registry (nil for a nil tracer).
func (t *Tracer) Metrics() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// AddSink attaches a streaming record tap. Multiple sinks are
// delivered in attachment order. Attach sinks before the traced run
// starts: records emitted earlier are not replayed. A nil tracer
// ignores the call.
func (t *Tracer) AddSink(s Sink) {
	if t == nil || s == nil {
		return
	}
	t.sinks = append(t.sinks, s)
}

// Track returns the track for (group, id), creating it with the given
// name on first use. Creation order is preserved for export, so two
// identical runs produce identically ordered files.
func (t *Tracer) Track(group Group, id int, name string) *Track {
	if t == nil {
		return nil
	}
	k := trackKey{group, id}
	if tk, ok := t.index[k]; ok {
		return tk
	}
	tk := &Track{
		t:     t,
		group: group,
		id:    id,
		name:  name,
		ring:  make([]Rec, t.opts.RingSize),
	}
	t.index[k] = tk
	t.tracks = append(t.tracks, tk)
	return tk
}

// Tracks returns every track in creation order.
func (t *Tracer) Tracks() []*Track {
	if t == nil {
		return nil
	}
	return t.tracks
}

// Track is one timeline of records: a simulated proc (GroupHost) or a
// NIC (GroupNIC). All emission methods must be called from simulation
// context; the coroutine discipline makes them single-writer.
type Track struct {
	t     *Tracer
	group Group
	id    int
	name  string

	ring     []Rec // hot buffer
	n        int   // ring occupancy
	cold     []Rec // spilled records, in emission order
	spills   int
	spillCtr *Counter // lazily bound "trace.spills.<group>.<name>" counter
}

// Group returns the track's group.
func (k *Track) Group() Group { return k.group }

// ID returns the track's id within its group (proc id or node id).
func (k *Track) ID() int { return k.id }

// Name returns the track's display name.
func (k *Track) Name() string { return k.name }

// Spills returns how many times the hot ring overflowed into the cold
// store — the tracer's own queue-pressure diagnostic.
func (k *Track) Spills() int { return k.spills }

// Span records a complete span [start, end). A nil track ignores the
// call.
func (k *Track) Span(cat, name string, start, end vtime.Time, a Args) {
	if k == nil {
		return
	}
	k.emit(Rec{Cat: cat, Name: name, Start: start, Dur: end.Sub(start), Args: a})
}

// Instant records a point event at ts. A nil track ignores the call.
func (k *Track) Instant(cat, name string, ts vtime.Time, a Args) {
	if k == nil {
		return
	}
	k.emit(Rec{Cat: cat, Name: name, Start: ts, Args: a})
}

func (k *Track) emit(r Rec) {
	if r.Dur < 0 {
		panic("trace: span ends before it starts")
	}
	for _, s := range k.t.sinks {
		s.TraceRec(k, r)
	}
	if k.t.opts.MetricsOnly {
		return
	}
	if k.n == len(k.ring) {
		k.spill()
		// Surface the overflow in the metrics registry (per track and
		// in total) so an exported trace carries its own queue-pressure
		// diagnosis and offline tools can warn that steady-state
		// emission allocated. The end-of-run drain in Recs does not
		// count: only overflows under emission are pressure.
		if k.spillCtr == nil {
			k.spillCtr = k.t.reg.Counter(fmt.Sprintf("trace.spills.%s.%s", k.group, k.name))
		}
		k.spillCtr.Inc()
		k.t.reg.Counter("trace.spills").Inc()
	}
	k.ring[k.n] = r
	k.n++
}

// spill drains the hot ring into the cold store.
func (k *Track) spill() {
	if k.n == 0 {
		return
	}
	k.cold = append(k.cold, k.ring[:k.n]...)
	k.n = 0
	k.spills++
}

// Recs returns every record in emission order, draining the hot ring
// first. Intended for export and tests after the run.
func (k *Track) Recs() []Rec {
	if k == nil {
		return nil
	}
	k.spill()
	return k.cold
}
