package trace

import (
	"testing"
	"time"

	"ovlp/internal/vtime"
)

func us(n int) vtime.Time { return vtime.Time(time.Duration(n) * time.Microsecond) }

func TestTrackIdentity(t *testing.T) {
	tr := New(Options{})
	a := tr.Track(GroupHost, 0, "rank0")
	b := tr.Track(GroupHost, 1, "rank1")
	n := tr.Track(GroupNIC, 0, "nic0")
	if tr.Track(GroupHost, 0, "other") != a {
		t.Error("same (group,id) must return the same track")
	}
	if a == n {
		t.Error("same id in different groups must be distinct tracks")
	}
	got := tr.Tracks()
	if len(got) != 3 || got[0] != a || got[1] != b || got[2] != n {
		t.Errorf("creation order not preserved: %v", got)
	}
	if a.Group() != GroupHost || a.ID() != 0 || a.Name() != "rank0" {
		t.Errorf("track identity wrong: %v %d %q", a.Group(), a.ID(), a.Name())
	}
}

func TestRingSpill(t *testing.T) {
	tr := New(Options{RingSize: 4})
	tk := tr.Track(GroupHost, 0, "r")
	const n = 11
	for i := 0; i < n; i++ {
		tk.Instant("c", "e", us(i), Args{Peer: NoPeer, ID: uint64(i + 1)})
	}
	if tk.Spills() != 2 {
		t.Errorf("spills = %d, want 2 (ring of 4, 11 emissions)", tk.Spills())
	}
	recs := tk.Recs()
	if len(recs) != n {
		t.Fatalf("got %d records, want %d", len(recs), n)
	}
	for i, r := range recs {
		if r.Start != us(i) || r.Args.ID != uint64(i+1) {
			t.Fatalf("record %d out of order: %+v", i, r)
		}
	}
	// Recs drains; emitting again keeps appending in order.
	tk.Instant("c", "e", us(n), Args{Peer: NoPeer, ID: n + 1})
	if recs = tk.Recs(); len(recs) != n+1 || recs[n].Args.ID != n+1 {
		t.Fatalf("post-drain emission lost: %d records", len(recs))
	}
}

func TestSpanAndInstant(t *testing.T) {
	tr := New(Options{})
	tk := tr.Track(GroupNIC, 2, "nic2")
	tk.Span("wire", "xfer", us(10), us(30), Args{Peer: 1, Size: 4096, ID: 7})
	tk.Instant("fault", "drop", us(40), None)
	recs := tk.Recs()
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	sp := recs[0]
	if sp.Instant() || sp.Dur != 20*time.Microsecond || sp.End() != us(30) {
		t.Errorf("span wrong: %+v", sp)
	}
	if !recs[1].Instant() || recs[1].End() != us(40) {
		t.Errorf("instant wrong: %+v", recs[1])
	}
}

func TestNegativeSpanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("span ending before start must panic")
		}
	}()
	tr := New(Options{})
	tr.Track(GroupHost, 0, "r").Span("c", "bad", us(5), us(1), None)
}

func TestTinyRingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("RingSize 1 must panic")
		}
	}()
	New(Options{RingSize: 1})
}

func TestMetricsOnly(t *testing.T) {
	tr := New(Options{MetricsOnly: true})
	tk := tr.Track(GroupHost, 0, "r")
	tk.Span("c", "s", us(0), us(5), None)
	tk.Instant("c", "i", us(1), None)
	if len(tk.Recs()) != 0 {
		t.Error("MetricsOnly tracer must not retain records")
	}
	tr.Metrics().Counter("x").Inc()
	if got := tr.Metrics().Counter("x").Value(); got != 1 {
		t.Errorf("counter = %d, want 1", got)
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	if tr.Track(GroupHost, 0, "r") != nil {
		t.Error("nil tracer must return nil track")
	}
	if tr.Tracks() != nil || tr.Metrics() != nil || tr.KernelObserver() != nil {
		t.Error("nil tracer accessors must return nil")
	}
	var tk *Track
	tk.Span("c", "s", us(0), us(1), None) // must not panic
	tk.Instant("c", "i", us(0), None)
	if tk.Recs() != nil {
		t.Error("nil track must have no records")
	}
	tr.Metrics().Counter("x").Inc() // nil registry chain must not panic
	tr.Metrics().Gauge("g").Set(3)
	tr.Metrics().Histogram("h", nil).Observe(1)
	if OverlapSink(nil, 0, nil) != nil {
		t.Error("OverlapSink of nil track must be nil")
	}
}

type recSink struct {
	tracks []string
	recs   []Rec
}

func (s *recSink) TraceRec(tk *Track, r Rec) {
	s.tracks = append(s.tracks, tk.Name())
	s.recs = append(s.recs, r)
}

func TestSinkObservesEveryRecord(t *testing.T) {
	tr := New(Options{RingSize: 4})
	s := &recSink{}
	tr.AddSink(s)
	tk := tr.Track(GroupHost, 0, "r0")
	nic := tr.Track(GroupNIC, 0, "nic0")
	tk.Span("kernel", "compute", us(0), us(5), None)
	nic.Instant("rel", "retransmit", us(2), Args{Peer: NoPeer, ID: 7})
	tk.Instant("overlap", "xfer-begin", us(3), Args{Peer: NoPeer, ID: 1})
	if len(s.recs) != 3 {
		t.Fatalf("sink saw %d records, want 3", len(s.recs))
	}
	want := []string{"r0", "nic0", "r0"}
	for i, name := range want {
		if s.tracks[i] != name {
			t.Errorf("record %d from track %q, want %q", i, s.tracks[i], name)
		}
	}
	if s.recs[0].Name != "compute" || s.recs[0].Dur != 5*time.Microsecond {
		t.Errorf("span record mangled: %+v", s.recs[0])
	}
	if s.recs[1].Args.ID != 7 {
		t.Errorf("instant args mangled: %+v", s.recs[1])
	}
}

func TestSinkSeesRecordsInMetricsOnlyMode(t *testing.T) {
	tr := New(Options{MetricsOnly: true})
	s := &recSink{}
	tr.AddSink(s)
	tk := tr.Track(GroupHost, 0, "r0")
	tk.Span("kernel", "compute", us(0), us(5), None)
	if len(s.recs) != 1 {
		t.Fatalf("sink saw %d records in MetricsOnly mode, want 1", len(s.recs))
	}
	if len(tk.Recs()) != 0 {
		t.Error("MetricsOnly tracer must still not retain records")
	}
}

func TestAddSinkNilSafe(t *testing.T) {
	var tr *Tracer
	tr.AddSink(&recSink{}) // nil tracer must ignore
	tr2 := New(Options{})
	tr2.AddSink(nil) // nil sink must be ignored
	tr2.Track(GroupHost, 0, "r").Instant("c", "i", us(0), None)
}

func TestSpillCountersInRegistry(t *testing.T) {
	tr := New(Options{RingSize: 4})
	tk := tr.Track(GroupHost, 0, "rank0")
	for i := 0; i < 11; i++ {
		tk.Instant("c", "e", us(i), None)
	}
	reg := tr.Metrics()
	if got := reg.Counter("trace.spills.hosts.rank0").Value(); got != 2 {
		t.Errorf("per-track spill counter = %d, want 2", got)
	}
	if got := reg.Counter("trace.spills").Value(); got != 2 {
		t.Errorf("total spill counter = %d, want 2", got)
	}
	// The end-of-run drain is not queue pressure and must not count.
	tk.Recs()
	if got := reg.Counter("trace.spills").Value(); got != 2 {
		t.Errorf("Recs drain bumped spill counter to %d", got)
	}
}
