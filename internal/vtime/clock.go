package vtime

import (
	"time"

	"ovlp/internal/clock"
)

// virtualEpoch is the wall-time anchor of virtual time zero. Any
// fixed instant works — virtual timestamps are only ever compared to
// each other — but a stable one keeps artifacts deterministic.
var virtualEpoch = time.Unix(0, 0).UTC()

// Clock returns the sim viewed through the clock.Clock interface: the
// backing clock of a real sim, or an adapter over the virtual kernel
// whose Sleep models computation on the calling proc and whose timers
// are virtual events. The adapter's blocking calls must run in
// simulation context, like the kernel methods they wrap.
func (s *Sim) Clock() clock.Clock {
	if s.rt != nil {
		return s.rt.clk
	}
	return simClock{s}
}

type simClock struct{ s *Sim }

func (c simClock) Now() time.Time                  { return virtualEpoch.Add(c.s.now.Duration()) }
func (c simClock) Since(t time.Time) time.Duration { return c.Now().Sub(t) }
func (c simClock) Domain() clock.Domain            { return clock.Virtual }

func (c simClock) Sleep(d time.Duration) {
	p := c.s.current
	if p == nil {
		panic("vtime: virtual clock Sleep outside proc context")
	}
	p.Sleep(d)
}

func (c simClock) AfterFunc(d time.Duration, fn func()) clock.Timer {
	if d < 0 {
		d = 0
	}
	t := &simTimer{}
	t.cancel = c.s.AfterCancel(d, func() {
		t.fired = true
		fn()
	})
	return t
}

func (c simClock) NewTimer(d time.Duration) clock.Timer {
	if d < 0 {
		d = 0
	}
	t := &simTimer{c: make(chan time.Time, 1)}
	t.cancel = c.s.AfterCancel(d, func() {
		t.fired = true
		select {
		case t.c <- c.Now():
		default:
		}
	})
	return t
}

// simTimer adapts a cancellable virtual event to clock.Timer. Fields
// are touched only in simulation context, so no locking.
type simTimer struct {
	c       chan time.Time
	cancel  func()
	fired   bool
	stopped bool
}

func (t *simTimer) C() <-chan time.Time {
	if t.c == nil {
		return nil
	}
	return t.c
}

func (t *simTimer) Stop() bool {
	if t.fired || t.stopped {
		return false
	}
	t.stopped = true
	t.cancel()
	return true
}

func (t *simTimer) Reset(d time.Duration) bool {
	panic("vtime: virtual clock timers do not support Reset")
}
