package vtime

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// Property: callbacks fire in non-decreasing time order, with ties
// broken by scheduling order, for arbitrary random schedules built
// both up-front and from within running events.
func TestQuickEventOrdering(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSim()
		type firing struct {
			at  Time
			seq int
		}
		var fired []firing
		seq := 0
		var schedule func(depth int)
		schedule = func(depth int) {
			n := rng.Intn(6)
			for i := 0; i < n; i++ {
				d := time.Duration(rng.Intn(1000)) * time.Microsecond
				mySeq := seq
				seq++
				deeper := depth < 3 && rng.Intn(3) == 0
				s.After(d, func() {
					fired = append(fired, firing{at: s.Now(), seq: mySeq})
					if deeper {
						schedule(depth + 1)
					}
				})
			}
		}
		schedule(0)
		s.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i].at < fired[i-1].at {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: N procs computing random sequences always finish at the
// sum of their own durations, regardless of interleaving, and the sim
// ends at the maximum across procs.
func TestQuickComputeAccounting(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSim()
		n := rng.Intn(5) + 1
		finals := make([]Time, n)
		var want []time.Duration
		for i := 0; i < n; i++ {
			var total time.Duration
			steps := make([]time.Duration, rng.Intn(20))
			for j := range steps {
				steps[j] = time.Duration(rng.Intn(10000)) * time.Nanosecond
				total += steps[j]
			}
			want = append(want, total)
			i := i
			s.Spawn("p", func(p *Proc) {
				for _, d := range steps {
					p.Compute(d)
				}
				finals[i] = p.Now()
			})
		}
		end := s.Run()
		var maxWant time.Duration
		for i := range finals {
			if finals[i] != Time(want[i]) {
				return false
			}
			if want[i] > maxWant {
				maxWant = want[i]
			}
		}
		return end == Time(maxWant)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
