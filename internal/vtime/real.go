package vtime

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"ovlp/internal/clock"
)

// Real-clock execution mode.
//
// A Sim built with NewRealSim runs its procs as genuinely concurrent
// goroutines against a clock.Clock instead of replaying an event
// heap. The kernel's core invariant — at any instant exactly one
// context executes simulation code — is preserved by a single kernel
// lock (rt.mu): every proc holds it while running and releases it
// only while sleeping in Compute or blocked in Park, and every timer
// callback acquires it before running. Protocol code written for the
// coroutine discipline therefore runs unchanged and data-race-free,
// while modelled compute and wire transfers overlap in real time
// because the lock is dropped for the duration of every sleep.
//
// The cost of the single lock is that protocol segments between
// blocking points serialize; those segments are microsecond-scale
// library code whose cost real-mode calibration measures anyway, so
// the serialization is part of the measured machine, not a modelling
// error.

// ErrAborted is wrapped into the kill delivered to every live proc
// when a real-clock run hits its deadline: unlike virtual mode, real
// goroutines cannot be left frozen, so the kernel unwinds them.
var ErrAborted = errors.New("vtime: real-clock run aborted")

// abortGrace bounds how long RunE waits for killed procs to unwind
// after a deadline abort before giving up on stragglers.
const abortGrace = 5 * time.Second

// realState is the real-clock side of a Sim; nil on virtual sims.
type realState struct {
	clk   clock.Clock
	epoch time.Time // clk reading at construction; Now() is clk.Since(epoch)

	mu sync.Mutex     // the kernel lock
	wg sync.WaitGroup // live proc goroutines

	started  bool
	stopped  bool // set once RunE returns; late timer callbacks become no-ops
	current  *Proc
	pending  []func() // proc starts queued before RunE
	firstErr error    // first non-abort proc panic
}

// NewRealSim returns a simulator that executes procs concurrently
// against clk (nil means the machine's monotonic clock). Virtual time
// zero corresponds to the moment of this call.
func NewRealSim(clk clock.Clock) *Sim {
	if clk == nil {
		clk = clock.Real()
	}
	return &Sim{
		yield: make(chan struct{}),
		rt:    &realState{clk: clk, epoch: clk.Now()},
	}
}

// IsReal reports whether the sim executes on a real (or fake) clock
// rather than the virtual event heap.
func (s *Sim) IsReal() bool { return s.rt != nil }

// ClockDomain names the kind of time the sim's timestamps are
// denominated in.
func (s *Sim) ClockDomain() clock.Domain {
	if s.rt != nil {
		return s.rt.clk.Domain()
	}
	return clock.Virtual
}

// realNow is Now for real sims: nanoseconds of clock time since the
// sim was constructed. Lock-free — the clock is monotonic.
func (s *Sim) realNow() Time { return Time(s.rt.clk.Since(s.rt.epoch)) }

// spawnReal registers (and, mid-run, immediately launches) a proc.
// Pre-run callers are single-threaded; mid-run callers hold the
// kernel lock, per the Spawn contract that mid-run spawning happens
// only from within the simulation.
func (s *Sim) spawnReal(name string, fn func(p *Proc)) *Proc {
	rt := s.rt
	p := &Proc{
		sim:   s,
		id:    len(s.procs),
		name:  name,
		state: stateNew,
		cond:  sync.NewCond(&rt.mu),
	}
	s.procs = append(s.procs, p)
	s.live++
	start := func() { s.startRealProc(p, fn) }
	if !rt.started {
		rt.pending = append(rt.pending, start)
	} else {
		start()
	}
	return p
}

// startRealProc launches p's goroutine. The goroutine runs fn holding
// the kernel lock, releasing it only inside Compute/Park.
func (s *Sim) startRealProc(p *Proc, fn func(p *Proc)) {
	rt := s.rt
	rt.wg.Add(1)
	go func() {
		defer rt.wg.Done()
		rt.mu.Lock()
		rt.current = p
		p.state = stateRunning
		if s.obs != nil {
			s.obs.ProcResumed(p)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					// The deadline abort unwinds procs with ErrAborted;
					// that is a consequence of the failure, not its
					// cause, so it never claims the firstErr slot.
					err, isErr := r.(error)
					if rt.firstErr == nil && !(isErr && errors.Is(err, ErrAborted)) {
						if isErr {
							rt.firstErr = fmt.Errorf("proc %q panicked: %w", p.name, err)
						} else {
							rt.firstErr = fmt.Errorf("proc %q panicked: %v", p.name, r)
						}
					}
				}
			}()
			if p.killed != nil {
				err := p.killed
				p.killed = nil
				panic(err)
			}
			fn(p)
		}()
		p.state = stateDone
		s.live--
		if s.obs != nil {
			s.obs.ProcDone(p)
		}
		rt.current = nil
		rt.mu.Unlock()
	}()
}

// computeReal models computation by really sleeping for d with the
// kernel lock released, so other procs and the fabric run meanwhile.
// Caller (the proc's goroutine) holds the kernel lock.
func (p *Proc) computeReal(d time.Duration) {
	s := p.sim
	rt := s.rt
	p.state = stateComputing
	p.blockedSince = s.realNow()
	p.blockedAt = "Compute"
	if s.obs != nil {
		s.obs.ProcBlocked(p, stateComputing.String(), "Compute")
	}
	rt.current = nil
	rt.mu.Unlock()
	rt.clk.Sleep(d)
	rt.mu.Lock()
	rt.current = p
	p.state = stateRunning
	if s.obs != nil {
		s.obs.ProcResumed(p)
	}
	if p.killed != nil {
		err := p.killed
		p.killed = nil
		panic(err)
	}
}

// parkReal blocks on the proc's condition variable until a permit
// arrives (or a kill). Exact LockSupport semantics, shared with the
// virtual path: a pending permit is consumed without blocking.
func (p *Proc) parkReal(where string) {
	s := p.sim
	rt := s.rt
	if p.permit {
		p.permit = false
		return
	}
	p.state = stateParked
	p.blockedSince = s.realNow()
	p.blockedAt = where
	if s.obs != nil {
		s.obs.ProcBlocked(p, stateParked.String(), where)
	}
	rt.current = nil
	for !p.permit && p.killed == nil {
		p.cond.Wait()
	}
	p.permit = false
	rt.current = p
	p.state = stateRunning
	if s.obs != nil {
		s.obs.ProcResumed(p)
	}
	if p.killed != nil {
		err := p.killed
		p.killed = nil
		panic(err)
	}
}

// unparkReal grants a permit. Caller is in simulation context, i.e.
// holds the kernel lock (a proc, or a timer callback).
func (p *Proc) unparkReal() {
	s := p.sim
	if p.state == stateParked && !p.permit {
		if eo, ok := s.obs.(EdgeObserver); ok {
			eo.ProcUnparked(p, s.rt.current)
		}
		p.permit = true
		p.cond.Signal()
		return
	}
	p.permit = true
}

// killReal marks p for death. A parked proc is woken to receive the
// panic; a computing proc receives it when its sleep ends (real
// sleeps cannot be interrupted — the few microseconds to milliseconds
// of modelled compute bound the delivery latency).
func (p *Proc) killReal(err error) {
	if p.state == stateDone || p.killed != nil {
		return
	}
	p.killed = err
	if p.state == stateParked {
		p.permit = false
		p.cond.Signal()
	}
}

// afterReal arms fn to run on the clock d from now, wrapped to take
// the kernel lock (so fn sees the same single-context world as a
// virtual event callback). Caller is in simulation context and holds
// the kernel lock — which is why cancel does not re-lock. A
// non-positive d fires from a fresh goroutine as soon as the lock is
// free rather than synchronously, matching the virtual rule that
// After(0) runs behind the current context.
func (s *Sim) afterReal(d time.Duration, fn func()) (cancel func()) {
	rt := s.rt
	cancelled := false
	run := func() {
		rt.mu.Lock()
		if !cancelled && !rt.stopped {
			prev := rt.current
			rt.current = nil
			fn()
			rt.current = prev
		}
		rt.mu.Unlock()
	}
	if d <= 0 {
		go run()
		return func() { cancelled = true }
	}
	tmr := rt.clk.AfterFunc(d, run)
	return func() {
		cancelled = true
		tmr.Stop()
	}
}

// Enter runs fn in simulation context from an external goroutine —
// the real-mode equivalent of virtual event context, used by fabric
// wire/DMA goroutines to deliver completions. fn runs holding the
// kernel lock with no current proc; it must not block (no Compute or
// Park), though it may Unpark procs, schedule timers and touch any
// simulation state. Once RunE has returned, fn is discarded: the run
// is over and late wire activity must not mutate its artifacts.
// Virtual sims panic — external goroutines cannot enter a
// coroutine-discipline simulation.
func (s *Sim) Enter(fn func()) {
	rt := s.rt
	if rt == nil {
		panic("vtime: Enter on a virtual sim")
	}
	rt.mu.Lock()
	if !rt.stopped {
		prev := rt.current
		rt.current = nil
		fn()
		rt.current = prev
	}
	rt.mu.Unlock()
}

// runRealE starts every queued proc and waits for all of them, under
// an optional real-time deadline watchdog. On deadline it diagnoses a
// DeadlockError exactly like virtual mode, then — unlike virtual
// mode, which freezes procs — aborts every live proc so no goroutine
// outlives the run.
func (s *Sim) runRealE() (t Time, err error) {
	rt := s.rt
	rt.mu.Lock()
	if s.running {
		rt.mu.Unlock()
		panic("vtime: Run called reentrantly")
	}
	s.running = true
	rt.started = true
	starts := rt.pending
	rt.pending = nil
	for _, st := range starts {
		st()
	}
	rt.mu.Unlock()

	done := make(chan struct{})
	go func() {
		rt.wg.Wait()
		close(done)
	}()

	var de *DeadlockError
	if s.deadline > 0 {
		tmr := rt.clk.NewTimer(s.deadline.Duration() - rt.clk.Since(rt.epoch))
		select {
		case <-done:
			tmr.Stop()
		case <-tmr.C():
			de = rt.abort(s)
			select {
			case <-done:
			case <-time.After(abortGrace):
				// Stragglers are mid-sleep; stopped (set below) keeps
				// their late timer callbacks from touching anything.
			}
		}
	} else {
		<-done
	}

	rt.mu.Lock()
	rt.stopped = true
	s.now = s.realNow()
	perr := rt.firstErr
	rt.mu.Unlock()
	s.running = false
	if de != nil {
		return s.now, de
	}
	return s.now, perr
}

// abort diagnoses the wedged run and delivers an ErrAborted kill to
// every live proc.
func (rt *realState) abort(s *Sim) *DeadlockError {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	s.now = s.realNow()
	de := s.deadlockError(fmt.Sprintf("deadline %v expired", s.deadline))
	if s.obs != nil {
		s.obs.Deadlock(de)
	}
	for _, p := range s.procs {
		if p.state != stateDone {
			p.killReal(fmt.Errorf("%w: %s", ErrAborted, de.Reason))
		}
	}
	return de
}
