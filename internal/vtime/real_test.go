package vtime

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"ovlp/internal/clock"
)

func TestRealSimComputesOverlapInWallTime(t *testing.T) {
	s := NewRealSim(nil)
	const d = 20 * time.Millisecond
	for i := 0; i < 4; i++ {
		s.Spawn("worker", func(p *Proc) { p.Compute(d) })
	}
	start := time.Now()
	end, err := s.RunE()
	if err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)
	if wall >= 4*d {
		t.Fatalf("4 procs computing %v took %v wall — not concurrent", d, wall)
	}
	if end.Duration() < d {
		t.Fatalf("run ended at %v, before a single compute of %v", end, d)
	}
	if !s.IsReal() || s.ClockDomain() != clock.RealDomain {
		t.Fatalf("IsReal=%v domain=%q", s.IsReal(), s.ClockDomain())
	}
}

func TestRealSimParkUnpark(t *testing.T) {
	s := NewRealSim(nil)
	var order []string
	var consumer *Proc
	consumer = s.Spawn("consumer", func(p *Proc) {
		p.Park("test.wait")
		order = append(order, "woken")
	})
	s.Spawn("producer", func(p *Proc) {
		p.Compute(2 * time.Millisecond)
		order = append(order, "produce")
		consumer.Unpark()
	})
	if _, err := s.RunE(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "produce" || order[1] != "woken" {
		t.Fatalf("order = %v, want [produce woken]", order)
	}
}

func TestRealSimPermitBeforePark(t *testing.T) {
	s := NewRealSim(nil)
	done := false
	var late *Proc
	late = s.Spawn("late", func(p *Proc) {
		p.Compute(5 * time.Millisecond) // let the permit arrive first
		p.Park("test.late")             // must consume the pending permit
		done = true
	})
	s.Spawn("early", func(p *Proc) { late.Unpark() })
	if _, err := s.RunE(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("pending permit was not consumed by Park")
	}
}

func TestRealSimAfterAndCancel(t *testing.T) {
	s := NewRealSim(nil)
	var fired, cancelledFired atomic.Int32
	s.Spawn("arm", func(p *Proc) {
		s.After(time.Millisecond, func() { fired.Add(1) })
		cancel := s.AfterCancel(time.Millisecond, func() { cancelledFired.Add(1) })
		cancel()
		p.Compute(10 * time.Millisecond)
	})
	if _, err := s.RunE(); err != nil {
		t.Fatal(err)
	}
	if fired.Load() != 1 {
		t.Fatalf("After fired %d times, want 1", fired.Load())
	}
	if cancelledFired.Load() != 0 {
		t.Fatal("cancelled timer fired")
	}
}

func TestRealSimDeadlineAbortsParkedProcs(t *testing.T) {
	s := NewRealSim(nil)
	s.SetDeadline(Time(10 * time.Millisecond))
	recovered := make(chan error, 1)
	s.Spawn("stuck", func(p *Proc) {
		defer func() {
			if r := recover(); r != nil {
				recovered <- r.(error)
				panic(r) // keep the kernel's view of an unwound proc
			}
		}()
		p.Park("test.never")
	})
	_, err := s.RunE()
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(de.Procs) != 1 || de.Procs[0].Where != "test.never" {
		t.Fatalf("dump = %+v, want the parked proc at test.never", de.Procs)
	}
	select {
	case kerr := <-recovered:
		if !errors.Is(kerr, ErrAborted) {
			t.Fatalf("proc unwound with %v, want ErrAborted", kerr)
		}
	case <-time.After(time.Second):
		t.Fatal("parked proc was not unwound by the abort")
	}
}

func TestRealSimProcPanicSurfaces(t *testing.T) {
	s := NewRealSim(nil)
	boom := errors.New("boom")
	s.Spawn("bad", func(p *Proc) {
		p.Compute(time.Millisecond)
		panic(boom)
	})
	s.Spawn("good", func(p *Proc) { p.Compute(2 * time.Millisecond) })
	_, err := s.RunE()
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestRealSimKill(t *testing.T) {
	s := NewRealSim(nil)
	die := errors.New("die")
	var got error
	var victim *Proc
	victim = s.Spawn("victim", func(p *Proc) {
		defer func() {
			if r := recover(); r != nil {
				got = r.(error)
			}
		}()
		p.Park("test.victim")
	})
	s.Spawn("killer", func(p *Proc) {
		p.Compute(2 * time.Millisecond)
		victim.Kill(die)
	})
	if _, err := s.RunE(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(got, die) {
		t.Fatalf("victim recovered %v, want die", got)
	}
}

// kernelLog records observer callbacks; under the kernel lock no
// synchronization is needed, which is itself part of what the test
// checks under -race.
type kernelLog struct {
	blocked, resumed, done, unparked int
}

func (l *kernelLog) ProcBlocked(p *Proc, state, where string) { l.blocked++ }
func (l *kernelLog) ProcResumed(p *Proc)                      { l.resumed++ }
func (l *kernelLog) ProcDone(p *Proc)                         { l.done++ }
func (l *kernelLog) Deadlock(e *DeadlockError)                {}
func (l *kernelLog) ProcUnparked(p *Proc, by *Proc)           { l.unparked++ }

func TestRealSimObserverCallbacks(t *testing.T) {
	s := NewRealSim(nil)
	log := &kernelLog{}
	s.SetObserver(log)
	var sleeper *Proc
	sleeper = s.Spawn("sleeper", func(p *Proc) {
		p.Compute(time.Millisecond)
		p.Park("test.sleep")
	})
	s.Spawn("waker", func(p *Proc) {
		p.Compute(3 * time.Millisecond)
		sleeper.Unpark()
	})
	if _, err := s.RunE(); err != nil {
		t.Fatal(err)
	}
	if log.done != 2 {
		t.Fatalf("done = %d, want 2", log.done)
	}
	if log.blocked != 3 { // 2 computes + 1 park
		t.Fatalf("blocked = %d, want 3", log.blocked)
	}
	if log.unparked != 1 {
		t.Fatalf("unparked = %d, want 1", log.unparked)
	}
	// resumed: 2 initial dispatches + 3 block resumes
	if log.resumed != 5 {
		t.Fatalf("resumed = %d, want 5", log.resumed)
	}
}

func TestRealSimMidRunSpawn(t *testing.T) {
	s := NewRealSim(nil)
	var childRan atomic.Bool
	s.Spawn("parent", func(p *Proc) {
		p.Compute(time.Millisecond)
		s.Spawn("child", func(c *Proc) {
			c.Compute(time.Millisecond)
			childRan.Store(true)
		})
		p.Compute(time.Millisecond)
	})
	if _, err := s.RunE(); err != nil {
		t.Fatal(err)
	}
	if !childRan.Load() {
		t.Fatal("mid-run spawned proc never ran")
	}
}

func TestVirtualSimClockAdapter(t *testing.T) {
	s := NewSim()
	clk := s.Clock()
	if clk.Domain() != clock.Virtual {
		t.Fatalf("domain = %q, want virtual", clk.Domain())
	}
	var fired bool
	var slept time.Duration
	s.Spawn("user", func(p *Proc) {
		start := clk.Now()
		clk.Sleep(5 * time.Millisecond) // models Compute on the proc
		slept = clk.Since(start)
		clk.AfterFunc(time.Millisecond, func() { fired = true })
		tm := clk.AfterFunc(time.Millisecond, func() { t.Error("stopped timer fired") })
		if !tm.Stop() {
			t.Error("Stop of an armed virtual timer returned false")
		}
		p.Compute(2 * time.Millisecond)
	})
	if _, err := s.RunE(); err != nil {
		t.Fatal(err)
	}
	if slept != 5*time.Millisecond {
		t.Fatalf("virtual Sleep advanced %v, want exactly 5ms", slept)
	}
	if !fired {
		t.Fatal("virtual AfterFunc did not fire")
	}
}
