// Package vtime implements a deterministic discrete-event simulation
// kernel with virtual time.
//
// A Sim owns a virtual clock and an event heap. Work is performed by
// procs — goroutines that run in a strict coroutine discipline: at any
// instant exactly one goroutine (the scheduler or a single proc) is
// executing, so every run of a given program is bit-for-bit
// reproducible. Events that fire at the same virtual time execute in
// the order they were scheduled.
//
// Procs model computation by calling Compute, which advances the
// virtual clock without consuming real CPU time proportional to the
// modelled duration, and synchronize through Park/Unpark (a permit
// semaphore in the style of LockSupport) or through callbacks
// scheduled with After.
//
// The kernel is the substrate for the fabric, mpi and armci packages:
// NIC DMA engines are event chains, ranks are procs, and the overlap
// instrumentation reads its time-stamps from the virtual clock.
package vtime

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Time is an instant in virtual time, in nanoseconds since the start
// of the simulation.
type Time int64

// Duration converts a virtual-time span to a time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Add returns the instant d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

func (t Time) String() string { return time.Duration(t).String() }

// event is a scheduled callback. Events are ordered by (at, seq) so
// that simultaneous events run in scheduling order.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// procState describes what a proc is currently doing; it is reported
// in deadlock dumps.
type procState int

const (
	stateNew procState = iota
	stateRunning
	stateComputing // blocked in Compute until a timer fires
	stateParked    // blocked in Park until Unpark
	stateDone
)

func (s procState) String() string {
	switch s {
	case stateNew:
		return "new"
	case stateRunning:
		return "running"
	case stateComputing:
		return "computing"
	case stateParked:
		return "parked"
	case stateDone:
		return "done"
	}
	return "invalid"
}

// Sim is a deterministic virtual-time simulator. The zero value is not
// usable; create one with NewSim.
type Sim struct {
	now    Time
	seq    uint64
	events eventHeap
	procs  []*Proc
	live   int // procs not yet done

	yield   chan struct{} // proc -> scheduler: I blocked or finished
	current *Proc         // proc currently executing, nil in scheduler context

	panicked any // panic value captured from a proc
	running  bool
}

// NewSim returns an empty simulator at virtual time zero.
func NewSim() *Sim {
	return &Sim{yield: make(chan struct{})}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Proc is a simulated thread of control. Procs are created with
// Sim.Spawn and run under the kernel's coroutine discipline: all Proc
// methods must be called from the proc's own goroutine, except Unpark,
// which may be called from any simulation context (another proc or an
// After callback).
type Proc struct {
	sim    *Sim
	id     int
	name   string
	resume chan struct{}
	state  procState
	permit bool // pending Unpark while not parked

	blockedSince Time   // for deadlock dumps
	blockedAt    string // label of the blocking call site
}

// ID returns the proc's index in spawn order, starting at zero.
func (p *Proc) ID() int { return p.id }

// Name returns the name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Sim returns the simulator the proc belongs to.
func (p *Proc) Sim() *Sim { return p.sim }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.sim.now }

// Spawn registers a new proc that will execute fn when Run is called.
// Spawning after Run has started is allowed only from within the
// simulation (a proc or callback); the new proc starts at the current
// virtual time.
func (s *Sim) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		sim:    s,
		id:     len(s.procs),
		name:   name,
		resume: make(chan struct{}),
		state:  stateNew,
	}
	s.procs = append(s.procs, p)
	s.live++
	s.schedule(s.now, func() { s.startProc(p, fn) })
	return p
}

// startProc launches the proc goroutine and transfers control to it.
// Runs in scheduler context.
func (s *Sim) startProc(p *Proc, fn func(p *Proc)) {
	go func() {
		<-p.resume // wait for first dispatch
		defer func() {
			if r := recover(); r != nil {
				s.panicked = fmt.Errorf("proc %q panicked: %v", p.name, r)
			}
			p.state = stateDone
			s.live--
			s.yield <- struct{}{}
		}()
		fn(p)
	}()
	s.dispatch(p)
}

// dispatch hands control to p and waits until it blocks or finishes.
// Must run in scheduler context (or transitively from it).
func (s *Sim) dispatch(p *Proc) {
	prev := s.current
	s.current = p
	p.state = stateRunning
	p.resume <- struct{}{}
	<-s.yield
	s.current = prev
	if s.panicked != nil {
		panic(s.panicked)
	}
}

// schedule enqueues fn to run at time at in scheduler context.
func (s *Sim) schedule(at Time, fn func()) {
	if at < s.now {
		panic(fmt.Sprintf("vtime: scheduling event in the past: %v < %v", at, s.now))
	}
	s.seq++
	heap.Push(&s.events, &event{at: at, seq: s.seq, fn: fn})
}

// After schedules fn to run in scheduler context d from now. It may be
// called from any simulation context. fn must not block; to perform
// blocking work, have fn Unpark a proc or Spawn one.
func (s *Sim) After(d time.Duration, fn func()) {
	if d < 0 {
		panic("vtime: negative delay")
	}
	s.schedule(s.now.Add(d), fn)
}

// block yields from the current proc to the scheduler and waits to be
// dispatched again. Must be called from the proc's goroutine.
func (p *Proc) block(st procState, where string) {
	p.state = st
	p.blockedSince = p.sim.now
	p.blockedAt = where
	p.sim.yield <- struct{}{}
	<-p.resume
	p.state = stateRunning
}

// Compute advances the proc's view of time by d, modelling a stretch
// of user computation (or any busy period). Other events continue to
// fire during the interval. Compute(0) yields to already-scheduled
// events at the current instant and then continues.
func (p *Proc) Compute(d time.Duration) {
	if d < 0 {
		panic("vtime: negative compute duration")
	}
	s := p.sim
	s.schedule(s.now.Add(d), func() { s.dispatch(p) })
	p.block(stateComputing, "Compute")
}

// Sleep is an alias for Compute, for callers modelling idle waiting
// rather than computation.
func (p *Proc) Sleep(d time.Duration) { p.Compute(d) }

// Yield reschedules the proc at the current virtual time behind any
// events already queued for this instant.
func (p *Proc) Yield() { p.Compute(0) }

// Park blocks the proc until another simulation context calls Unpark.
// If a permit is pending (Unpark happened since the last Park), Park
// consumes it and returns immediately. The where label is reported in
// deadlock dumps.
func (p *Proc) Park(where string) {
	if p.permit {
		p.permit = false
		return
	}
	p.block(stateParked, where)
}

// Unpark makes a permit available to p: if p is parked it resumes at
// the current virtual time; otherwise its next Park returns
// immediately. Calling Unpark repeatedly before the proc parks is
// idempotent. Unpark must be called from simulation context (a proc or
// an After callback), never from outside Run.
func (p *Proc) Unpark() {
	if p.state == stateParked && !p.permit {
		p.permit = true
		s := p.sim
		s.schedule(s.now, func() {
			if p.state == stateParked && p.permit {
				p.permit = false
				s.dispatch(p)
			}
		})
		return
	}
	p.permit = true
}

// Run executes the simulation until no events remain. It returns the
// final virtual time. If events are exhausted while procs are still
// blocked, Run panics with a deadlock report; if a proc panics, Run
// re-panics with the proc's panic value.
func (s *Sim) Run() Time {
	if s.running {
		panic("vtime: Run called reentrantly")
	}
	s.running = true
	defer func() { s.running = false }()
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(*event)
		if e.at < s.now {
			panic("vtime: time went backwards")
		}
		s.now = e.at
		e.fn()
	}
	if s.live > 0 {
		panic("vtime: deadlock: " + s.deadlockReport())
	}
	return s.now
}

// deadlockReport describes every non-finished proc.
func (s *Sim) deadlockReport() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d proc(s) blocked at t=%v with no pending events\n", s.live, s.now)
	procs := append([]*Proc(nil), s.procs...)
	sort.Slice(procs, func(i, j int) bool { return procs[i].id < procs[j].id })
	for _, p := range procs {
		if p.state == stateDone {
			continue
		}
		fmt.Fprintf(&b, "  proc %d %q: %v in %s since t=%v\n",
			p.id, p.name, p.state, p.blockedAt, p.blockedSince)
	}
	return b.String()
}
