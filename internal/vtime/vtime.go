// Package vtime implements a deterministic discrete-event simulation
// kernel with virtual time.
//
// A Sim owns a virtual clock and an event heap. Work is performed by
// procs — goroutines that run in a strict coroutine discipline: at any
// instant exactly one goroutine (the scheduler or a single proc) is
// executing, so every run of a given program is bit-for-bit
// reproducible. Events that fire at the same virtual time execute in
// the order they were scheduled.
//
// Procs model computation by calling Compute, which advances the
// virtual clock without consuming real CPU time proportional to the
// modelled duration, and synchronize through Park/Unpark (a permit
// semaphore in the style of LockSupport) or through callbacks
// scheduled with After.
//
// The kernel is the substrate for the fabric, mpi and armci packages:
// NIC DMA engines are event chains, ranks are procs, and the overlap
// instrumentation reads its time-stamps from the virtual clock.
package vtime

import (
	"container/heap"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Time is an instant in virtual time, in nanoseconds since the start
// of the simulation.
type Time int64

// Duration converts a virtual-time span to a time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Add returns the instant d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

func (t Time) String() string { return time.Duration(t).String() }

// event is a scheduled callback. Events are ordered by (at, seq) so
// that simultaneous events run in scheduling order. A cancelled event
// is skipped without advancing the clock, so stale timers (e.g. a
// retransmission timeout whose acknowledgment arrived) never stretch
// the simulated duration.
type event struct {
	at        Time
	seq       uint64
	fn        func()
	cancelled bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// procState describes what a proc is currently doing; it is reported
// in deadlock dumps.
type procState int

const (
	stateNew procState = iota
	stateRunning
	stateComputing // blocked in Compute until a timer fires
	stateParked    // blocked in Park until Unpark
	stateDone
)

func (s procState) String() string {
	switch s {
	case stateNew:
		return "new"
	case stateRunning:
		return "running"
	case stateComputing:
		return "computing"
	case stateParked:
		return "parked"
	case stateDone:
		return "done"
	}
	return "invalid"
}

// Observer receives kernel scheduling callbacks: every proc
// block/resume transition, proc completion, and deadlock diagnoses.
// All callbacks run in simulation context under the coroutine
// discipline (exactly one goroutine executing), so an observer needs
// no locking; it must not call back into the kernel (no Compute, Park
// or scheduling) — observation is free in virtual time.
type Observer interface {
	// ProcBlocked fires when p yields to the scheduler: state is the
	// blocked state ("computing", "parked"), where the blocking call
	// site label.
	ProcBlocked(p *Proc, state, where string)
	// ProcResumed fires when p regains control, including its first
	// dispatch after Spawn.
	ProcResumed(p *Proc)
	// ProcDone fires when p's function returns (or panics).
	ProcDone(p *Proc)
	// Deadlock fires when RunE diagnoses a wedged simulation, with the
	// same error it is about to return.
	Deadlock(e *DeadlockError)
}

// EdgeObserver is an optional extension of Observer exposing the
// event-graph edges of the schedule: which context released each
// parked proc. Observers that also implement it (checked by type
// assertion, so plain Observers keep working) receive one callback per
// effective wake-up — the parked→runnable transitions that offline
// analysis (critical-path extraction) needs to hop between timelines.
type EdgeObserver interface {
	Observer
	// ProcUnparked fires when a parked p is granted the wake-up that
	// will dispatch it, before the dispatch runs. by is the proc whose
	// execution called Unpark, or nil when the wake came from event
	// context (a timer, a fabric delivery). Redundant Unparks — the
	// proc not parked, or a permit already pending — do not fire.
	ProcUnparked(p *Proc, by *Proc)
}

// Sim is a deterministic virtual-time simulator. The zero value is not
// usable; create one with NewSim.
type Sim struct {
	now      Time
	seq      uint64
	events   eventHeap
	procs    []*Proc
	live     int  // procs not yet done
	deadline Time // 0 = no watchdog
	obs      Observer

	yield   chan struct{} // proc -> scheduler: I blocked or finished
	current *Proc         // proc currently executing, nil in scheduler context

	panicked any // panic value captured from a proc
	running  bool

	// rt is non-nil for real-clock sims (see real.go): procs run as
	// concurrent goroutines under a kernel lock and time comes from a
	// clock.Clock instead of the event heap.
	rt *realState
}

// SetObserver installs the kernel observer (nil to remove). It must be
// called before Run; observing a simulation mid-flight would see spans
// with no start.
func (s *Sim) SetObserver(o Observer) { s.obs = o }

// NewSim returns an empty simulator at virtual time zero.
func NewSim() *Sim {
	return &Sim{yield: make(chan struct{})}
}

// Now returns the current virtual time: the event clock on a virtual
// sim, nanoseconds of real clock time since construction on a real
// one.
func (s *Sim) Now() Time {
	if s.rt != nil {
		return s.realNow()
	}
	return s.now
}

// Proc is a simulated thread of control. Procs are created with
// Sim.Spawn and run under the kernel's coroutine discipline: all Proc
// methods must be called from the proc's own goroutine, except Unpark,
// which may be called from any simulation context (another proc or an
// After callback).
type Proc struct {
	sim    *Sim
	id     int
	name   string
	resume chan struct{}
	state  procState
	permit bool // pending Unpark while not parked

	blockedSince Time   // for deadlock dumps
	blockedAt    string // label of the blocking call site

	killed   error  // pending Kill, delivered as a panic at the next resume
	resumeEv *event // pending Compute timer, cancelled by Kill

	cond *sync.Cond // real mode: wakes the proc's Park; waits on rt.mu
}

// ID returns the proc's index in spawn order, starting at zero.
func (p *Proc) ID() int { return p.id }

// Name returns the name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Sim returns the simulator the proc belongs to.
func (p *Proc) Sim() *Sim { return p.sim }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.sim.Now() }

// Spawn registers a new proc that will execute fn when Run is called.
// Spawning after Run has started is allowed only from within the
// simulation (a proc or callback); the new proc starts at the current
// virtual time.
func (s *Sim) Spawn(name string, fn func(p *Proc)) *Proc {
	if s.rt != nil {
		return s.spawnReal(name, fn)
	}
	p := &Proc{
		sim:    s,
		id:     len(s.procs),
		name:   name,
		resume: make(chan struct{}),
		state:  stateNew,
	}
	s.procs = append(s.procs, p)
	s.live++
	s.schedule(s.now, func() { s.startProc(p, fn) })
	return p
}

// startProc launches the proc goroutine and transfers control to it.
// Runs in scheduler context.
func (s *Sim) startProc(p *Proc, fn func(p *Proc)) {
	go func() {
		<-p.resume // wait for first dispatch
		defer func() {
			if r := recover(); r != nil {
				// Preserve typed panic values (library CommErrors and
				// friends) so errors.Is/As work on what Run surfaces.
				if err, ok := r.(error); ok {
					s.panicked = fmt.Errorf("proc %q panicked: %w", p.name, err)
				} else {
					s.panicked = fmt.Errorf("proc %q panicked: %v", p.name, r)
				}
			}
			p.state = stateDone
			s.live--
			if s.obs != nil {
				s.obs.ProcDone(p)
			}
			s.yield <- struct{}{}
		}()
		if s.obs != nil {
			s.obs.ProcResumed(p)
		}
		if p.killed != nil {
			err := p.killed
			p.killed = nil
			panic(err)
		}
		fn(p)
	}()
	s.dispatch(p)
}

// dispatch hands control to p and waits until it blocks or finishes.
// Must run in scheduler context (or transitively from it).
func (s *Sim) dispatch(p *Proc) {
	if p.state == stateDone {
		return // proc was killed while a stale resume event was in flight
	}
	prev := s.current
	s.current = p
	p.state = stateRunning
	p.resume <- struct{}{}
	<-s.yield
	s.current = prev
	if pv := s.panicked; pv != nil {
		s.panicked = nil
		panic(pv)
	}
}

// schedule enqueues fn to run at time at in scheduler context.
func (s *Sim) schedule(at Time, fn func()) *event {
	if at < s.now {
		panic(fmt.Sprintf("vtime: scheduling event in the past: %v < %v", at, s.now))
	}
	s.seq++
	e := &event{at: at, seq: s.seq, fn: fn}
	heap.Push(&s.events, e)
	return e
}

// After schedules fn to run in scheduler context d from now. It may be
// called from any simulation context. fn must not block; to perform
// blocking work, have fn Unpark a proc or Spawn one.
func (s *Sim) After(d time.Duration, fn func()) {
	if d < 0 {
		panic("vtime: negative delay")
	}
	if s.rt != nil {
		s.afterReal(d, fn)
		return
	}
	s.schedule(s.now.Add(d), fn)
}

// AfterCancel is After returning a cancel function. A cancelled event
// is discarded without running and — unlike an event that fires as a
// no-op — without advancing the virtual clock, so speculative timers
// (retransmission timeouts, watchdogs) do not distort the measured run
// duration. Cancelling twice, or after the event fired, is a no-op.
func (s *Sim) AfterCancel(d time.Duration, fn func()) (cancel func()) {
	if d < 0 {
		panic("vtime: negative delay")
	}
	if s.rt != nil {
		return s.afterReal(d, fn)
	}
	e := s.schedule(s.now.Add(d), fn)
	return func() { e.cancelled = true }
}

// block yields from the current proc to the scheduler and waits to be
// dispatched again. Must be called from the proc's goroutine.
func (p *Proc) block(st procState, where string) {
	p.state = st
	p.blockedSince = p.sim.now
	p.blockedAt = where
	if p.sim.obs != nil {
		p.sim.obs.ProcBlocked(p, st.String(), where)
	}
	p.sim.yield <- struct{}{}
	<-p.resume
	p.state = stateRunning
	if p.sim.obs != nil {
		p.sim.obs.ProcResumed(p)
	}
	if p.killed != nil {
		// Deliver a pending Kill exactly once: the panic unwinds the
		// proc's stack; cleanup code that recovers it may block again
		// without re-triggering.
		err := p.killed
		p.killed = nil
		panic(err)
	}
}

// Compute advances the proc's view of time by d, modelling a stretch
// of user computation (or any busy period). Other events continue to
// fire during the interval. Compute(0) yields to already-scheduled
// events at the current instant and then continues.
func (p *Proc) Compute(d time.Duration) {
	if d < 0 {
		panic("vtime: negative compute duration")
	}
	s := p.sim
	if s.rt != nil {
		p.computeReal(d)
		return
	}
	var ev *event
	ev = s.schedule(s.now.Add(d), func() {
		if p.resumeEv == ev {
			p.resumeEv = nil
		}
		s.dispatch(p)
	})
	p.resumeEv = ev
	p.block(stateComputing, "Compute")
}

// Sleep is an alias for Compute, for callers modelling idle waiting
// rather than computation.
func (p *Proc) Sleep(d time.Duration) { p.Compute(d) }

// Yield reschedules the proc at the current virtual time behind any
// events already queued for this instant.
func (p *Proc) Yield() { p.Compute(0) }

// Park blocks the proc until another simulation context calls Unpark.
// If a permit is pending (Unpark happened since the last Park), Park
// consumes it and returns immediately. The where label is reported in
// deadlock dumps.
func (p *Proc) Park(where string) {
	if p.sim.rt != nil {
		p.parkReal(where)
		return
	}
	if p.permit {
		p.permit = false
		return
	}
	p.block(stateParked, where)
}

// Unpark makes a permit available to p: if p is parked it resumes at
// the current virtual time; otherwise its next Park returns
// immediately. Calling Unpark repeatedly before the proc parks is
// idempotent. Unpark must be called from simulation context (a proc or
// an After callback), never from outside Run.
func (p *Proc) Unpark() {
	if p.sim.rt != nil {
		p.unparkReal()
		return
	}
	if p.state == stateParked && !p.permit {
		p.permit = true
		s := p.sim
		if eo, ok := s.obs.(EdgeObserver); ok {
			eo.ProcUnparked(p, s.current)
		}
		s.schedule(s.now, func() {
			if p.state == stateParked && p.permit {
				p.permit = false
				s.dispatch(p)
			}
		})
		return
	}
	p.permit = true
}

// Kill schedules err to be delivered to p as a panic, modelling the
// abrupt death of the simulated thread (a crashed node). If p is
// blocked (parked or computing) it is resumed immediately at the
// current virtual time and the panic unwinds from the blocking call;
// if it is running or not yet started, the panic is delivered at its
// next blocking call (or before its body runs, for a new proc). The
// panic value is exactly err, so a deferred recover in the proc's
// stack (e.g. a rank's abort handler) can identify the crash, record
// it, and let the rest of the simulation continue. Killing a finished
// proc, or one with a kill already pending, is a no-op. Kill must be
// called from simulation context, like Unpark.
func (p *Proc) Kill(err error) {
	if err == nil {
		panic("vtime: Kill with nil error")
	}
	if p.sim.rt != nil {
		p.killReal(err)
		return
	}
	if p.state == stateDone || p.killed != nil {
		return
	}
	p.killed = err
	s := p.sim
	switch p.state {
	case stateParked:
		// Clear any pending permit so a stale Unpark event (which
		// re-checks state and permit) cannot double-dispatch.
		p.permit = false
		s.schedule(s.now, func() {
			if p.state == stateParked {
				s.dispatch(p)
			}
		})
	case stateComputing:
		// Cancel the Compute timer so it cannot resume the proc a
		// second time (or resume a later, unrelated Compute early).
		if p.resumeEv != nil {
			p.resumeEv.cancelled = true
			p.resumeEv = nil
		}
		s.schedule(s.now, func() {
			if p.state == stateComputing {
				s.dispatch(p)
			}
		})
	}
	// stateNew and stateRunning: the pending kill is delivered by the
	// killed check at the proc's next resume or before its body runs.
}

// SetDeadline arms a watchdog: if the simulation reaches virtual time d
// with procs still live, RunE stops and returns a *DeadlockError whose
// Reason says the deadline expired. A zero deadline disables the
// watchdog. The watchdog catches livelock (e.g. a retransmission loop
// that schedules events forever without making progress), which the
// event-exhaustion check alone cannot detect.
func (s *Sim) SetDeadline(d Time) { s.deadline = d }

// ProcDump is the state of one unfinished proc at the moment a
// deadlock was diagnosed.
type ProcDump struct {
	ID    int
	Name  string
	State string // "parked", "computing", "new", "running"
	Where string // label of the blocking call site
	Since Time   // virtual time the proc blocked
}

// DeadlockError reports that the simulation could not run to
// completion: events were exhausted (or the deadline expired) while
// procs were still blocked. Procs lists every unfinished proc in spawn
// order with what it was waiting on.
type DeadlockError struct {
	Now    Time
	Reason string
	Procs  []ProcDump
}

func (e *DeadlockError) Error() string {
	s := fmt.Sprintf("vtime: deadlock: %s: %d proc(s) blocked at t=%v",
		e.Reason, len(e.Procs), e.Now)
	for _, p := range e.Procs {
		s += fmt.Sprintf("\n  proc %d %q: %s in %s since t=%v",
			p.ID, p.Name, p.State, p.Where, p.Since)
	}
	return s
}

// deadlockError builds the structured dump of every non-finished proc.
func (s *Sim) deadlockError(reason string) *DeadlockError {
	e := &DeadlockError{Now: s.now, Reason: reason}
	procs := append([]*Proc(nil), s.procs...)
	sort.Slice(procs, func(i, j int) bool { return procs[i].id < procs[j].id })
	for _, p := range procs {
		if p.state == stateDone {
			continue
		}
		e.Procs = append(e.Procs, ProcDump{
			ID:    p.id,
			Name:  p.name,
			State: p.state.String(),
			Where: p.blockedAt,
			Since: p.blockedSince,
		})
	}
	return e
}

// RunE executes the simulation until no events remain and returns the
// final virtual time. If events are exhausted (or the deadline set with
// SetDeadline expires) while procs are still blocked, it returns a
// *DeadlockError describing every stuck proc. A panic from a proc is
// recovered and returned as an error, wrapped so errors.Is/As see the
// original value when it was itself an error.
func (s *Sim) RunE() (t Time, err error) {
	if s.rt != nil {
		return s.runRealE()
	}
	if s.running {
		panic("vtime: Run called reentrantly")
	}
	s.running = true
	defer func() {
		s.running = false
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				err = e
			} else {
				err = fmt.Errorf("vtime: %v", r)
			}
			t = s.now
		}
	}()
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(*event)
		if e.cancelled {
			continue // skipped without advancing the clock
		}
		if e.at < s.now {
			panic("vtime: time went backwards")
		}
		if s.deadline > 0 && e.at >= s.deadline && s.live > 0 {
			s.now = s.deadline
			de := s.deadlockError(fmt.Sprintf("deadline %v expired", s.deadline))
			if s.obs != nil {
				s.obs.Deadlock(de)
			}
			return s.now, de
		}
		s.now = e.at
		e.fn()
	}
	if s.live > 0 {
		de := s.deadlockError("no pending events")
		if s.obs != nil {
			s.obs.Deadlock(de)
		}
		return s.now, de
	}
	return s.now, nil
}

// Run is RunE for callers that treat failure as fatal: it panics with
// the error (a *DeadlockError when the simulation wedged, or the
// proc's wrapped panic value) instead of returning it.
func (s *Sim) Run() Time {
	t, err := s.RunE()
	if err != nil {
		panic(err)
	}
	return t
}
