package vtime

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestComputeAdvancesTime(t *testing.T) {
	s := NewSim()
	var at Time
	s.Spawn("p", func(p *Proc) {
		p.Compute(10 * time.Millisecond)
		p.Compute(5 * time.Millisecond)
		at = p.Now()
	})
	end := s.Run()
	if want := Time(15 * time.Millisecond); at != want || end != want {
		t.Fatalf("got proc time %v, end %v, want %v", at, end, want)
	}
}

func TestAfterOrdering(t *testing.T) {
	s := NewSim()
	var order []int
	s.After(2*time.Millisecond, func() { order = append(order, 2) })
	s.After(1*time.Millisecond, func() { order = append(order, 1) })
	s.After(1*time.Millisecond, func() { order = append(order, 11) }) // same time, later seq
	s.After(3*time.Millisecond, func() { order = append(order, 3) })
	s.Run()
	want := []int{1, 11, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestParkUnpark(t *testing.T) {
	s := NewSim()
	var wake Time
	p := s.Spawn("sleeper", func(p *Proc) {
		p.Park("test")
		wake = p.Now()
	})
	s.After(7*time.Millisecond, func() { p.Unpark() })
	s.Run()
	if want := Time(7 * time.Millisecond); wake != want {
		t.Fatalf("woke at %v, want %v", wake, want)
	}
}

func TestUnparkPermitBeforePark(t *testing.T) {
	s := NewSim()
	done := false
	var p *Proc
	p = s.Spawn("p", func(pp *Proc) {
		pp.Compute(time.Millisecond) // let the permit land first
		pp.Park("test")              // must consume the pending permit
		done = true
	})
	s.After(0, func() { p.Unpark() })
	s.Run()
	if !done {
		t.Fatal("proc never resumed from Park despite pending permit")
	}
}

func TestDoubleUnparkSinglePermit(t *testing.T) {
	s := NewSim()
	rounds := 0
	p := s.Spawn("p", func(pp *Proc) {
		pp.Park("one")
		rounds++
		pp.Park("two") // needs a second Unpark
		rounds++
	})
	s.After(time.Millisecond, func() {
		p.Unpark()
		p.Unpark() // collapses into the same permit while parked
	})
	s.After(2*time.Millisecond, func() { p.Unpark() })
	s.Run()
	if rounds != 2 {
		t.Fatalf("rounds = %d, want 2", rounds)
	}
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected deadlock panic")
		}
		err, ok := r.(*DeadlockError)
		if !ok {
			t.Fatalf("panic value is %T, want *DeadlockError", r)
		}
		if !strings.Contains(err.Error(), "stuck") {
			t.Fatalf("deadlock report should name the blocked proc; got %v", err)
		}
	}()
	s := NewSim()
	s.Spawn("stuck", func(p *Proc) { p.Park("forever") })
	s.Run()
}

func TestRunEReturnsDeadlockError(t *testing.T) {
	s := NewSim()
	s.Spawn("stuck", func(p *Proc) {
		p.Compute(3 * time.Millisecond)
		p.Park("wait-for-msg")
	})
	_, err := s.RunE()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v (%T), want *DeadlockError", err, err)
	}
	if len(dl.Procs) != 1 {
		t.Fatalf("dump has %d procs, want 1", len(dl.Procs))
	}
	d := dl.Procs[0]
	if d.Name != "stuck" || d.State != "parked" || d.Where != "wait-for-msg" {
		t.Fatalf("bad proc dump: %+v", d)
	}
	if d.Since != Time(3*time.Millisecond) {
		t.Fatalf("blocked since %v, want 3ms", d.Since)
	}
}

func TestRunERecoversProcError(t *testing.T) {
	sentinel := errors.New("sentinel failure")
	s := NewSim()
	s.Spawn("bomb", func(p *Proc) { panic(sentinel) })
	_, err := s.RunE()
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
}

func TestDeadlineExpiry(t *testing.T) {
	s := NewSim()
	p := s.Spawn("waiter", func(p *Proc) { p.Park("never") })
	// A self-rescheduling timer keeps the event heap busy forever;
	// only the deadline can stop the run.
	var tick func()
	tick = func() {
		s.After(time.Millisecond, tick)
		_ = p
	}
	s.After(time.Millisecond, tick)
	s.SetDeadline(Time(10 * time.Millisecond))
	end, err := s.RunE()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v, want *DeadlockError", err)
	}
	if !strings.Contains(dl.Reason, "deadline") {
		t.Fatalf("reason = %q, want deadline expiry", dl.Reason)
	}
	if end != Time(10*time.Millisecond) {
		t.Fatalf("end = %v, want 10ms", end)
	}
}

func TestAfterCancelSkipsWithoutAdvancingClock(t *testing.T) {
	s := NewSim()
	fired := false
	cancel := s.AfterCancel(50*time.Millisecond, func() { fired = true })
	s.After(time.Millisecond, func() { cancel() })
	end := s.Run()
	if fired {
		t.Fatal("cancelled event still fired")
	}
	if want := Time(time.Millisecond); end != want {
		t.Fatalf("end = %v, want %v (cancelled timer advanced the clock)", end, want)
	}
}

func TestProcPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected proc panic to propagate out of Run")
		}
	}()
	s := NewSim()
	s.Spawn("bomb", func(p *Proc) { panic("boom") })
	s.Run()
}

func TestTwoProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		s := NewSim()
		var log []string
		for _, name := range []string{"a", "b"} {
			name := name
			s.Spawn(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					p.Compute(time.Millisecond)
					log = append(log, name)
				}
			})
		}
		s.Run()
		return log
	}
	first := run()
	for trial := 0; trial < 5; trial++ {
		again := run()
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("non-deterministic interleaving: %v vs %v", first, again)
			}
		}
	}
}

func TestSpawnDuringRun(t *testing.T) {
	s := NewSim()
	var childTime Time
	s.Spawn("parent", func(p *Proc) {
		p.Compute(4 * time.Millisecond)
		s.Spawn("child", func(c *Proc) {
			c.Compute(time.Millisecond)
			childTime = c.Now()
		})
	})
	s.Run()
	if want := Time(5 * time.Millisecond); childTime != want {
		t.Fatalf("child finished at %v, want %v", childTime, want)
	}
}

func TestYieldRunsQueuedEventsFirst(t *testing.T) {
	s := NewSim()
	var order []string
	s.Spawn("p", func(p *Proc) {
		s.After(0, func() { order = append(order, "event") })
		p.Yield()
		order = append(order, "proc")
	})
	s.Run()
	if len(order) != 2 || order[0] != "event" || order[1] != "proc" {
		t.Fatalf("order = %v, want [event proc]", order)
	}
}

func TestNegativeComputePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative duration")
		}
	}()
	s := NewSim()
	s.Spawn("p", func(p *Proc) { p.Compute(-time.Second) })
	s.Run()
}
